// WAN transport backend tests (net/wan/): $.net config parsing and its
// path-aware error battery, the WanModel building blocks (RTT matrices,
// bandwidth queues, gossip overlay), end-to-end behavior of each backend
// piece, determinism across seeds / job counts / windowed lanes, and the
// checked-in WAN golden replay (tests/data/engine_goldens.json,
// "wan_points" / "wan_single_points" — the bit-identity contract the CI
// wan-matrix job enforces). See docs/NETWORKING.md.
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/json.hpp"
#include "net/topology.hpp"
#include "net/wan/geo.hpp"
#include "net/wan/wan_model.hpp"
#include "net/wan/wan_spec.hpp"
#include "runner/export.hpp"
#include "runner/runner.hpp"
#include "sim/simulation.hpp"

#ifndef BFTSIM_REPO_ROOT
#error "BFTSIM_REPO_ROOT must point at the repository checkout"
#endif

namespace bftsim {
namespace {

// ---------------------------------------------------------------------------
// WanSpec parsing
// ---------------------------------------------------------------------------

TEST(WanSpecTest, DefaultIsDisabled) {
  const WanSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_FALSE(spec.gossip());
  EXPECT_FALSE(spec.has_matrix());
  EXPECT_FALSE(spec.bandwidth_enabled());
  EXPECT_DOUBLE_EQ(spec.min_one_way_ms(), 0.0);
}

TEST(WanSpecTest, BundledMatrixSelectsAllRegions) {
  const WanSpec spec = WanSpec::from_json(
      json::parse(R"({"rtt": {"matrix": "geo8"}})"));
  EXPECT_TRUE(spec.enabled());
  EXPECT_TRUE(spec.has_matrix());
  EXPECT_EQ(spec.region_count(), 8u);
  EXPECT_EQ(spec.regions[0], "us-east");
  // Symmetric table, 2 ms intra-region diagonal.
  EXPECT_DOUBLE_EQ(spec.rtt(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(spec.rtt(0, 2), spec.rtt(2, 0));
  EXPECT_DOUBLE_EQ(spec.min_one_way_ms(), 1.0);  // diagonal 2 ms / 2
}

TEST(WanSpecTest, BundledMatrixSubsetKeepsRequestedOrder) {
  const WanSpec spec = WanSpec::from_json(json::parse(
      R"({"rtt": {"matrix": "geo8",
                  "regions": ["eu-west", "us-east", "ap-south"]}})"));
  ASSERT_EQ(spec.region_count(), 3u);
  EXPECT_EQ(spec.regions[0], "eu-west");
  EXPECT_EQ(spec.regions[1], "us-east");
  EXPECT_EQ(spec.regions[2], "ap-south");
  // eu-west <-> us-east is 75 ms in the bundled table.
  EXPECT_DOUBLE_EQ(spec.rtt(0, 1), 75.0);
  EXPECT_DOUBLE_EQ(spec.rtt(1, 0), 75.0);
  // eu-west <-> ap-south is 110 ms.
  EXPECT_DOUBLE_EQ(spec.rtt(0, 2), 110.0);
}

TEST(WanSpecTest, CustomMatrixRoundTripsThroughJson) {
  const WanSpec spec = WanSpec::from_json(json::parse(
      R"({"backend": "gossip", "fanout": 4,
          "uplink_mbps": 100, "downlink_mbps": 250,
          "rtt": {"regions": ["a", "b"], "rtt_ms": [[1, 30], [28, 1]]}})"));
  EXPECT_TRUE(spec.gossip());
  EXPECT_EQ(spec.fanout, 4u);
  EXPECT_DOUBLE_EQ(spec.uplink_mbps, 100.0);
  EXPECT_DOUBLE_EQ(spec.downlink_mbps, 250.0);
  EXPECT_DOUBLE_EQ(spec.rtt(0, 1), 30.0);
  EXPECT_DOUBLE_EQ(spec.rtt(1, 0), 28.0);
  EXPECT_DOUBLE_EQ(spec.min_one_way_ms(), 0.5);

  const WanSpec back = WanSpec::from_json(spec.to_json());
  EXPECT_EQ(back.regions, spec.regions);
  EXPECT_EQ(back.rtt_ms, spec.rtt_ms);
  EXPECT_EQ(back.fanout, spec.fanout);
  EXPECT_TRUE(back.gossip());
  EXPECT_DOUBLE_EQ(back.uplink_mbps, spec.uplink_mbps);
  EXPECT_DOUBLE_EQ(back.downlink_mbps, spec.downlink_mbps);
}

TEST(WanSpecTest, RegionAssignmentIsRoundRobin) {
  WanSpec spec;
  spec.regions = {"a", "b", "c"};
  spec.rtt_ms.assign(9, 1.0);
  EXPECT_EQ(spec.region_of(0), 0u);
  EXPECT_EQ(spec.region_of(1), 1u);
  EXPECT_EQ(spec.region_of(2), 2u);
  EXPECT_EQ(spec.region_of(3), 0u);
}

// ---------------------------------------------------------------------------
// $.net config error battery: every rejection is a single-line, path-aware
// "config error at $.net..." naming the offending entry.
// ---------------------------------------------------------------------------

std::string net_error_of(const std::string& net_json) {
  try {
    (void)WanSpec::from_json(json::parse(net_json));
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(WanSpecErrorTest, UnknownRegionNameInBundledMatrix) {
  const std::string err = net_error_of(
      R"({"rtt": {"matrix": "geo8", "regions": ["us-east", "atlantis"]}})");
  EXPECT_NE(err.find("config error at $.net.rtt.regions[1]"), std::string::npos)
      << err;
  EXPECT_NE(err.find("atlantis"), std::string::npos) << err;
}

TEST(WanSpecErrorTest, UnknownBundledMatrixNamesTheAlternatives) {
  const std::string err = net_error_of(R"({"rtt": {"matrix": "geo99"}})");
  EXPECT_NE(err.find("config error at $.net.rtt.matrix"), std::string::npos)
      << err;
  EXPECT_NE(err.find("geo8"), std::string::npos) << err;
}

TEST(WanSpecErrorTest, NonSquareMatrixWrongRowCount) {
  const std::string err = net_error_of(
      R"({"rtt": {"regions": ["a", "b"], "rtt_ms": [[1, 2]]}})");
  EXPECT_NE(err.find("config error at $.net.rtt.rtt_ms"), std::string::npos)
      << err;
  EXPECT_NE(err.find("square"), std::string::npos) << err;
}

TEST(WanSpecErrorTest, NonSquareMatrixRaggedRow) {
  const std::string err = net_error_of(
      R"({"rtt": {"regions": ["a", "b"], "rtt_ms": [[1, 2], [3]]}})");
  EXPECT_NE(err.find("config error at $.net.rtt.rtt_ms[1]"), std::string::npos)
      << err;
}

TEST(WanSpecErrorTest, NegativeRttEntryNamesTheCell) {
  const std::string err = net_error_of(
      R"({"rtt": {"regions": ["a", "b"], "rtt_ms": [[1, -2], [3, 1]]}})");
  EXPECT_NE(err.find("config error at $.net.rtt.rtt_ms[0][1]"),
            std::string::npos)
      << err;
}

TEST(WanSpecErrorTest, NegativeBandwidth) {
  const std::string up = net_error_of(R"({"uplink_mbps": -5})");
  EXPECT_NE(up.find("config error at $.net.uplink_mbps"), std::string::npos)
      << up;
  const std::string down = net_error_of(R"({"downlink_mbps": -0.5})");
  EXPECT_NE(down.find("config error at $.net.downlink_mbps"),
            std::string::npos)
      << down;
}

TEST(WanSpecErrorTest, GossipFanoutOfZero) {
  const std::string err = net_error_of(R"({"backend": "gossip", "fanout": 0})");
  EXPECT_NE(err.find("config error at $.net.fanout"), std::string::npos) << err;
}

TEST(WanSpecErrorTest, UnknownBackendName) {
  const std::string err = net_error_of(R"({"backend": "carrier-pigeon"})");
  EXPECT_NE(err.find("config error at $.net.backend"), std::string::npos)
      << err;
}

TEST(WanSpecErrorTest, UnknownKeyInsideNet) {
  const std::string err = net_error_of(R"({"bandwidth": 10})");
  EXPECT_NE(err.find("config error at $.net.bandwidth: unknown key"),
            std::string::npos)
      << err;
}

TEST(WanSpecErrorTest, BundledAndCustomMatrixAreExclusive) {
  const std::string err = net_error_of(
      R"({"rtt": {"matrix": "geo8", "regions": ["a"], "rtt_ms": [[1]]}})");
  EXPECT_NE(err.find("config error at $.net.rtt"), std::string::npos) << err;
}

TEST(WanSpecErrorTest, DuplicateRegionName) {
  const std::string err = net_error_of(
      R"({"rtt": {"regions": ["a", "a"], "rtt_ms": [[1, 2], [2, 1]]}})");
  EXPECT_NE(err.find("config error at $.net.rtt.regions[1]"), std::string::npos)
      << err;
}

TEST(WanSpecErrorTest, CustomTableNeedsRegionsAndMatrix) {
  const std::string err =
      net_error_of(R"({"rtt": {"regions": ["a", "b"]}})");
  EXPECT_NE(err.find("config error at $.net.rtt"), std::string::npos) << err;
}

SimConfig wan_base_config(const char* protocol = "pbft") {
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(50, 10);
  cfg.seed = 1;
  cfg.max_time_ms = 120'000;
  return cfg;
}

WanSpec geo8_matrix_spec() {
  return WanSpec::from_json(json::parse(R"({"rtt": {"matrix": "geo8"}})"));
}

TEST(WanConfigTest, NetAndTopologyAreMutuallyExclusive) {
  SimConfig cfg = wan_base_config();
  cfg.net = geo8_matrix_spec();
  TopologySpec topo;
  topo.regions = 2;
  topo.cross_extra_ms = 100.0;
  cfg.topology = topo.to_json();
  try {
    cfg.validate();
    FAIL() << "expected a config error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("config error at $.net"),
              std::string::npos)
        << e.what();
  }
}

TEST(WanConfigTest, GossipRejectsParallelEngine) {
  SimConfig cfg = wan_base_config();
  cfg.net.backend = WanSpec::Backend::kGossip;
  cfg.engine.intra_jobs = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.engine.intra_jobs = 1;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(WanConfigTest, BandwidthRejectsPerNodeRng) {
  SimConfig cfg = wan_base_config();
  cfg.net.uplink_mbps = 10.0;
  cfg.engine.rng = EngineConfig::RngMode::kPerNode;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.engine.rng = EngineConfig::RngMode::kAuto;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(WanConfigTest, MatrixOnlyStaysWindowedParallelLegal) {
  SimConfig cfg = wan_base_config();
  cfg.net = geo8_matrix_spec();
  cfg.engine.intra_jobs = 4;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(WanConfigTest, GossipRejectsAttackScenarios) {
  SimConfig cfg = wan_base_config();
  cfg.net.backend = WanSpec::Backend::kGossip;
  cfg.attack = "partition";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(WanConfigTest, SimConfigJsonRoundTripKeepsTheNetBlock) {
  SimConfig cfg = wan_base_config();
  cfg.net = geo8_matrix_spec();
  cfg.net.backend = WanSpec::Backend::kGossip;
  cfg.net.fanout = 5;
  cfg.net.uplink_mbps = 40.0;
  const SimConfig back = SimConfig::from_json(cfg.to_json());
  EXPECT_TRUE(back.net.gossip());
  EXPECT_EQ(back.net.fanout, 5u);
  EXPECT_EQ(back.net.regions, cfg.net.regions);
  EXPECT_EQ(back.net.rtt_ms, cfg.net.rtt_ms);
  EXPECT_DOUBLE_EQ(back.net.uplink_mbps, 40.0);
  // The emitted form is self-contained: a second emit is byte-identical.
  EXPECT_EQ(back.to_json().dump(2), cfg.to_json().dump(2));
}

// ---------------------------------------------------------------------------
// WanModel: propagation, bandwidth queues, gossip overlay
// ---------------------------------------------------------------------------

TEST(WanModelTest, BaseDelayIsHalfTheRegionPairRtt) {
  const WanSpec spec = geo8_matrix_spec();
  WanModel model(spec, 16, Rng{1});
  // Nodes 0 and 8 both map to region 0 (us-east): intra-region 1 ms.
  EXPECT_EQ(model.base_delay(0, 8), from_ms(1.0));
  // Nodes 0 (us-east) and 2 (eu-west): 75 ms RTT -> 37.5 ms one-way.
  EXPECT_EQ(model.base_delay(0, 2), from_ms(37.5));
  EXPECT_EQ(model.base_delay(2, 0), from_ms(37.5));
  EXPECT_EQ(model.min_base_delay(), from_ms(1.0));
}

TEST(WanModelTest, DeliveryTimeWithoutBandwidthIsPurePropagation) {
  WanSpec spec;  // no bandwidth, no matrix
  WanModel model(spec, 4, Rng{1});
  EXPECT_EQ(model.delivery_time(0, 1, 1 << 20, 100, 250), 350);
}

TEST(WanModelTest, UplinkSerializesMessagesInSendOrder) {
  WanSpec spec;
  spec.uplink_mbps = 8.0;  // 8 Mb/s -> 1 us per byte
  WanModel model(spec, 4, Rng{1});
  // First message: starts at depart=0, serializes 1000 bytes in 1000 us,
  // then propagates for 500 us.
  EXPECT_EQ(model.delivery_time(0, 1, 1000, 0, 500), 1500);
  // Second message departs at the same instant but queues behind the
  // first on node 0's uplink: starts at 1000, arrives 1000+1000+500.
  EXPECT_EQ(model.delivery_time(0, 2, 1000, 0, 500), 2500);
  // A different sender's uplink is idle: no queueing.
  EXPECT_EQ(model.delivery_time(3, 1, 1000, 0, 500), 1500);
}

TEST(WanModelTest, DownlinkQueuesConcurrentArrivals) {
  WanSpec spec;
  spec.downlink_mbps = 8.0;
  WanModel model(spec, 4, Rng{1});
  // Two messages reach node 1's downlink at t=500; the second drains after
  // the first.
  EXPECT_EQ(model.delivery_time(0, 1, 1000, 0, 500), 1500);
  EXPECT_EQ(model.delivery_time(2, 1, 1000, 0, 500), 2500);
  // Node 3's downlink is independent.
  EXPECT_EQ(model.delivery_time(0, 3, 1000, 0, 500), 1500);
}

TEST(WanModelTest, UnlimitedRateChargesNoSerialization) {
  WanSpec spec;
  spec.uplink_mbps = 8.0;  // downlink stays unlimited
  WanModel model(spec, 4, Rng{1});
  // Only the uplink side charges time: 1000 us serialization + prop.
  EXPECT_EQ(model.delivery_time(0, 1, 1000, 0, 0), 1000);
}

TEST(WanModelTest, GossipOverlayHasRingEdgeAndExactFanout) {
  WanSpec spec;
  spec.backend = WanSpec::Backend::kGossip;
  spec.fanout = 3;
  const std::uint32_t n = 16;
  WanModel model(spec, n, Rng{7});
  for (NodeId v = 0; v < n; ++v) {
    const std::vector<NodeId>& peers = model.peers_of(v);
    ASSERT_EQ(peers.size(), 3u) << "node " << v;
    // Ring successor is always the first peer: the connectivity backbone.
    EXPECT_EQ(peers[0], (v + 1) % n);
    std::set<NodeId> unique(peers.begin(), peers.end());
    EXPECT_EQ(unique.size(), peers.size()) << "duplicate peer at node " << v;
    EXPECT_EQ(unique.count(v), 0u) << "self-loop at node " << v;
  }
}

TEST(WanModelTest, GossipOverlayIsAPureFunctionOfTheSeed) {
  WanSpec spec;
  spec.backend = WanSpec::Backend::kGossip;
  spec.fanout = 4;
  WanModel a(spec, 32, Rng{42});
  WanModel b(spec, 32, Rng{42});
  WanModel c(spec, 32, Rng{43});
  bool any_difference = false;
  for (NodeId v = 0; v < 32; ++v) {
    EXPECT_EQ(a.peers_of(v), b.peers_of(v)) << "node " << v;
    if (a.peers_of(v) != c.peers_of(v)) any_difference = true;
  }
  EXPECT_TRUE(any_difference) << "overlay ignored its seed";
}

TEST(WanModelTest, SaturatedFanoutBecomesDirectBroadcast) {
  WanSpec spec;
  spec.backend = WanSpec::Backend::kGossip;
  spec.fanout = 16;  // >= n-1
  WanModel model(spec, 8, Rng{1});
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_EQ(model.peers_of(v).size(), 7u);
  }
}

// ---------------------------------------------------------------------------
// End-to-end backend behavior
// ---------------------------------------------------------------------------

TEST(WanSimTest, RttMatrixSlowsConsensusLikeTheWanItModels) {
  SimConfig lan = wan_base_config();
  SimConfig wan = wan_base_config();
  wan.net = geo8_matrix_spec();
  const RunResult local = run_simulation(lan);
  const RunResult geo = run_simulation(wan);
  ASSERT_TRUE(local.terminated);
  ASSERT_TRUE(geo.terminated);
  EXPECT_TRUE(geo.decisions_consistent());
  // A 16-node quorum spans all 8 regions; every protocol phase pays tens
  // of ms of cross-continent propagation.
  EXPECT_GT(geo.latency_ms(), local.latency_ms() + 50.0);
}

TEST(WanSimTest, TightBandwidthDelaysLargeProposals) {
  SimConfig fast = wan_base_config("hotstuff-ns");
  fast.net.uplink_mbps = 10'000.0;
  SimConfig slow = wan_base_config("hotstuff-ns");
  slow.net.uplink_mbps = 1.0;  // 8 us per byte: serialization dominates
  const RunResult unconstrained = run_simulation(fast);
  const RunResult constrained = run_simulation(slow);
  ASSERT_TRUE(unconstrained.terminated);
  ASSERT_TRUE(constrained.terminated);
  EXPECT_TRUE(constrained.decisions_consistent());
  EXPECT_GT(constrained.latency_ms(), unconstrained.latency_ms());
}

TEST(WanSimTest, GossipReachesEveryProtocolDecision) {
  for (const char* protocol :
       {"pbft", "hotstuff-ns", "librabft", "tendermint", "algorand"}) {
    SimConfig cfg = wan_base_config(protocol);
    cfg.net.backend = WanSpec::Backend::kGossip;
    cfg.net.fanout = 3;
    cfg.decisions = 1;
    const RunResult result = run_simulation(cfg);
    ASSERT_TRUE(result.terminated) << protocol;
    EXPECT_TRUE(result.decisions_consistent()) << protocol;
    // Dissemination happened over the overlay: non-origin nodes relayed,
    // and redundant copies were suppressed.
    EXPECT_GT(result.gossip_relayed, 0u) << protocol;
    EXPECT_GT(result.gossip_duplicates, 0u) << protocol;
  }
}

TEST(WanSimTest, DirectRunsNeverTouchTheGossipCounters) {
  SimConfig cfg = wan_base_config();
  cfg.net = geo8_matrix_spec();
  cfg.net.uplink_mbps = 100.0;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_EQ(result.gossip_relayed, 0u);
  EXPECT_EQ(result.gossip_duplicates, 0u);
}

TEST(WanSimTest, GossipCountersReachTheJsonExport) {
  SimConfig cfg = wan_base_config();
  cfg.net.backend = WanSpec::Backend::kGossip;
  cfg.net.fanout = 3;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  const json::Value doc = result_to_json(result, false);
  const json::Value* gossip = doc.as_object().find("gossip");
  ASSERT_NE(gossip, nullptr);
  EXPECT_EQ(gossip->get_int("relayed", 0),
            static_cast<std::int64_t>(result.gossip_relayed));
  EXPECT_EQ(gossip->get_int("duplicates", 0),
            static_cast<std::int64_t>(result.gossip_duplicates));
}

TEST(WanSimTest, GossipSurvivesCrashFaults) {
  // A crashed relayer must not strand dissemination: the overlay's other
  // edges route around it and consensus still completes.
  SimConfig cfg = wan_base_config();
  cfg.net.backend = WanSpec::Backend::kGossip;
  cfg.net.fanout = 3;
  cfg.faults.crashes.push_back({2, 300.0, 2000.0});
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

// ---------------------------------------------------------------------------
// Determinism: same seed, job counts, windowed lanes
// ---------------------------------------------------------------------------

SimConfig full_wan_config(std::uint64_t seed = 9) {
  SimConfig cfg = wan_base_config();
  cfg.seed = seed;
  cfg.net = WanSpec::from_json(json::parse(
      R"({"backend": "gossip", "fanout": 3,
          "uplink_mbps": 200, "downlink_mbps": 200,
          "rtt": {"matrix": "geo8"}})"));
  cfg.record_trace = true;
  return cfg;
}

TEST(WanDeterminismTest, SameSeedSameFingerprint) {
  const RunResult a = run_simulation(full_wan_config());
  const RunResult b = run_simulation(full_wan_config());
  EXPECT_EQ(a.termination_time, b.termination_time);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.gossip_relayed, b.gossip_relayed);
  EXPECT_EQ(a.gossip_duplicates, b.gossip_duplicates);
  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
}

/// Canonical report text with the one legitimately nondeterministic field
/// (wall clock) zeroed — the same normalization `equivalent()` applies.
std::string deterministic_report(const Aggregate& agg) {
  json::Value doc = aggregate_to_json(agg);
  doc.as_object()["wall_seconds_total"] = 0.0;
  return doc.dump(2);
}

TEST(WanDeterminismTest, ReportsAreByteIdenticalAcrossJobCounts) {
  // The acceptance contract for the CI wan-matrix job: gossip + bandwidth
  // + RTT-matrix aggregates must not depend on the worker count.
  SimConfig cfg = full_wan_config();
  cfg.record_trace = false;
  const Aggregate serial = run_repeated(cfg, 4);
  const Aggregate jobs2 = run_repeated_parallel(cfg, 4, 2);
  const Aggregate jobs4 = run_repeated_parallel(cfg, 4, 4);
  EXPECT_TRUE(equivalent(serial, jobs2));
  EXPECT_TRUE(equivalent(serial, jobs4));
  EXPECT_EQ(deterministic_report(serial), deterministic_report(jobs2));
  EXPECT_EQ(deterministic_report(serial), deterministic_report(jobs4));
}

TEST(WanDeterminismTest, WindowedMatrixRunsAreBitIdenticalToOneLane) {
  // RTT-matrix-only runs stay legal under the windowed-parallel engine:
  // the base delay is a pure function of the pair, so every lane count
  // must reproduce the one-lane per-node-RNG run bit for bit.
  SimConfig cfg = wan_base_config();
  cfg.net = geo8_matrix_spec();
  cfg.engine.rng = EngineConfig::RngMode::kPerNode;
  cfg.record_trace = true;

  cfg.engine.intra_jobs = 1;
  const RunResult one_lane = run_simulation(cfg);
  ASSERT_TRUE(one_lane.terminated);
  for (const std::uint32_t lanes : {2u, 3u, 8u}) {
    cfg.engine.intra_jobs = lanes;
    const RunResult parallel = run_simulation(cfg);
    SCOPED_TRACE("intra_jobs=" + std::to_string(lanes));
    EXPECT_EQ(parallel.termination_time, one_lane.termination_time);
    EXPECT_EQ(parallel.events_processed, one_lane.events_processed);
    EXPECT_EQ(parallel.messages_sent, one_lane.messages_sent);
    EXPECT_EQ(parallel.messages_delivered, one_lane.messages_delivered);
    EXPECT_EQ(parallel.trace_fingerprint, one_lane.trace_fingerprint);
  }
}

// ---------------------------------------------------------------------------
// WAN golden replay: the checked-in aggregates must reproduce bit for bit.
// The CI wan-matrix job runs exactly this suite under ASan/UBSan.
// ---------------------------------------------------------------------------

const std::string kGoldensPath =
    std::string(BFTSIM_REPO_ROOT) + "/tests/data/engine_goldens.json";

TEST(WanGoldensTest, WanPointsReplayBitIdentical) {
  const json::Value doc = json::parse_file(kGoldensPath);
  const json::Array& points = doc.as_object().at("wan_points").as_array();
  ASSERT_GE(points.size(), 4u);
  for (const json::Value& point : points) {
    const json::Object& o = point.as_object();
    SCOPED_TRACE(o.at("name").as_string());
    const SimConfig cfg = SimConfig::from_json(o.at("config"));
    EXPECT_TRUE(cfg.net.enabled());
    const auto repeats = static_cast<std::size_t>(o.at("repeats").as_int());
    const Aggregate actual = run_repeated(cfg, repeats);
    // Byte-level comparison through the canonical JSON emission: any field
    // drift (including doubles) shows up as a readable diff. The recorded
    // wall clock is zeroed on both sides — it is machine time, not model
    // time.
    json::Value want = o.at("aggregate");
    want.as_object()["wall_seconds_total"] = 0.0;
    EXPECT_EQ(deterministic_report(actual), want.dump(2));
  }
}

TEST(WanGoldensTest, WanSinglePointsReplayBitIdentical) {
  const json::Value doc = json::parse_file(kGoldensPath);
  const json::Array& points =
      doc.as_object().at("wan_single_points").as_array();
  ASSERT_GE(points.size(), 1u);
  for (const json::Value& point : points) {
    const json::Object& o = point.as_object();
    SCOPED_TRACE(o.at("name").as_string());
    const SimConfig cfg = SimConfig::from_json(o.at("config"));
    const RunResult r = run_simulation(cfg);
    const json::Object& want = o.at("result").as_object();
    EXPECT_EQ(r.terminated, want.at("terminated").as_bool());
    EXPECT_EQ(static_cast<std::int64_t>(r.termination_time),
              want.at("termination_time").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.events_processed),
              want.at("events_processed").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.messages_sent),
              want.at("messages_sent").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.messages_delivered),
              want.at("messages_delivered").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.messages_dropped),
              want.at("messages_dropped").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.bytes_sent),
              want.at("bytes_sent").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.gossip_relayed),
              want.at("gossip_relayed").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.gossip_duplicates),
              want.at("gossip_duplicates").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.decisions.size()),
              want.at("decision_count").as_int());
  }
}

}  // namespace
}  // namespace bftsim

// Controller / engine tests, exercised through small purpose-built test
// protocols registered via the public registry — the same path a user of
// the simulator takes to add a custom protocol (§III-A3).
#include "sim/controller.hpp"

#include <gtest/gtest.h>

#include "attacker/registry.hpp"
#include "crypto/hash.hpp"
#include "protocols/registry.hpp"
#include "sim/simulation.hpp"

namespace bftsim {
namespace {

// --- test payloads / protocols -------------------------------------------------

struct HelloPayload final : Payload {
  NodeId from;
  explicit HelloPayload(NodeId f) : from(f) {}
  std::string_view type() const noexcept override { return "test/hello"; }
  std::uint64_t digest() const noexcept override { return hash_words({from}); }
};

/// Every node broadcasts hello; a node decides once it heard from everyone
/// else (including fail-stopped peers never happens; so quorum is n-f-1).
class HelloNode final : public Node {
 public:
  void on_start(Context& ctx) override {
    ctx.broadcast(make_payload<HelloPayload>(ctx.id()), /*include_self=*/false);
  }
  void on_message(const Message& msg, Context& ctx) override {
    if (msg.as<HelloPayload>() == nullptr) return;
    if (++heard_ >= ctx.n() - ctx.f() - 1 && !decided_) {
      decided_ = true;
      ctx.report_decision(42);
    }
  }
  void on_timer(const TimerEvent&, Context&) override {}

 private:
  std::uint32_t heard_ = 0;
  bool decided_ = false;
};

/// Decides when a 100 ms timer fires; also sets a second timer and cancels
/// it, so exactly one timer per node must fire.
class TimerNode final : public Node {
 public:
  void on_start(Context& ctx) override {
    (void)ctx.set_timer(from_ms(100), 1);
    const TimerId cancelled = ctx.set_timer(from_ms(50), 2);
    ctx.cancel_timer(cancelled);
  }
  void on_message(const Message&, Context&) override {}
  void on_timer(const TimerEvent& ev, Context& ctx) override {
    EXPECT_EQ(ev.tag, 1u) << "cancelled timer fired";
    ctx.report_decision(ev.tag);
  }
};

/// Never decides; never sends. Exercises the horizon stop.
class SilentNode final : public Node {
 public:
  void on_start(Context&) override {}
  void on_message(const Message&, Context&) override {}
  void on_timer(const TimerEvent&, Context&) override {}
};

/// Nodes 0 and 1 ping-pong forever; exercises the event budget guard.
class PingPongNode final : public Node {
 public:
  void on_start(Context& ctx) override {
    if (ctx.id() == 0) ctx.send(1, make_payload<HelloPayload>(ctx.id()));
  }
  void on_message(const Message& msg, Context& ctx) override {
    ctx.send(msg.src, make_payload<HelloPayload>(ctx.id()));
  }
  void on_timer(const TimerEvent&, Context&) override {}
};

/// Decides with a value encoding the context parameters, to verify the
/// controller exposes the right identity/config through Context.
class ProbeNode final : public Node {
 public:
  void on_start(Context& ctx) override {
    ctx.record_view(ctx.id() + 100);
    ctx.report_decision(hash_words(
        {ctx.id(), ctx.n(), ctx.f(), static_cast<std::uint64_t>(ctx.lambda())}));
  }
  void on_message(const Message&, Context&) override {}
  void on_timer(const TimerEvent&, Context&) override {}
};

/// Sends one self-message; decides on receiving it. Self-messages must not
/// count as network traffic.
class SelfNode final : public Node {
 public:
  void on_start(Context& ctx) override {
    ctx.send(ctx.id(), make_payload<HelloPayload>(ctx.id()));
  }
  void on_message(const Message& msg, Context& ctx) override {
    EXPECT_EQ(msg.src, ctx.id());
    ctx.report_decision(1);
  }
  void on_timer(const TimerEvent&, Context&) override {}
};

/// Reroutes every intercepted message to the next node without touching
/// payload or delay: pins the attacker_modified contract (rerouting counts
/// as modification just like payload replacement).
class ReroutingAttacker final : public Attacker {
 public:
  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override {
    in_flight.msg.dst = (in_flight.msg.dst + 1) % ctx.n();
    return Disposition::kDeliver;
  }
};

/// Greedy corruption attack: tries to corrupt every node at start; the
/// budget must cap it at f (minus fail-stopped nodes).
class GreedyCorruptor final : public Attacker {
 public:
  void on_start(AttackerContext& ctx) override {
    for (NodeId i = 0; i < ctx.n(); ++i) (void)ctx.corrupt(i);
  }
  Disposition attack(MessageInFlight& in_flight, AttackerContext& ctx) override {
    return ctx.is_corrupt(in_flight.msg.src) ? Disposition::kDrop
                                             : Disposition::kDeliver;
  }
};

void register_test_protocols() {
  static const bool done = [] {
    auto& reg = ProtocolRegistry::instance();
    const auto simple = [](auto make) {
      return [make](NodeId, const SimConfig&) -> std::unique_ptr<Node> {
        return make();
      };
    };
    reg.add({"test-hello", NetModel::kAsync, byzantine_third, 1,
             simple([] { return std::make_unique<HelloNode>(); })});
    reg.add({"test-timer", NetModel::kAsync, byzantine_third, 1,
             simple([] { return std::make_unique<TimerNode>(); })});
    reg.add({"test-silent", NetModel::kAsync, byzantine_third, 1,
             simple([] { return std::make_unique<SilentNode>(); })});
    reg.add({"test-pingpong", NetModel::kAsync, byzantine_third, 1,
             simple([] { return std::make_unique<PingPongNode>(); })});
    reg.add({"test-probe", NetModel::kAsync, byzantine_third, 1,
             simple([] { return std::make_unique<ProbeNode>(); })});
    reg.add({"test-self", NetModel::kAsync, byzantine_third, 1,
             simple([] { return std::make_unique<SelfNode>(); })});
    AttackRegistry::instance().add("test-greedy", [](const SimConfig&) {
      return std::make_unique<GreedyCorruptor>();
    });
    AttackRegistry::instance().add("test-reroute", [](const SimConfig&) {
      return std::make_unique<ReroutingAttacker>();
    });
    return true;
  }();
  (void)done;
}

SimConfig test_config(const std::string& protocol, std::uint32_t n = 8) {
  register_test_protocols();
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = n;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = 1;
  cfg.max_time_ms = 10'000;
  return cfg;
}

// --- tests ---------------------------------------------------------------------

TEST(ControllerTest, HelloProtocolTerminates) {
  const RunResult result = run_simulation(test_config("test-hello"));
  EXPECT_TRUE(result.terminated);
  EXPECT_EQ(result.decisions.size(), 8u);
  for (const Decision& d : result.decisions) EXPECT_EQ(d.value, 42u);
  EXPECT_GT(result.termination_time, 0);
}

TEST(ControllerTest, BroadcastCountsFanOutOnly) {
  const RunResult result = run_simulation(test_config("test-hello"));
  // 8 nodes broadcast to 7 peers each; no other traffic.
  EXPECT_EQ(result.messages_sent, 8u * 7u);
  EXPECT_EQ(result.messages_dropped, 0u);
  // Termination cuts delivery of some messages, but never inflates it.
  EXPECT_LE(result.messages_delivered, result.messages_sent);
}

TEST(ControllerTest, SelfMessagesAreFreeAndDelivered) {
  const RunResult result = run_simulation(test_config("test-self"));
  EXPECT_TRUE(result.terminated);
  EXPECT_EQ(result.messages_sent, 0u);       // self traffic is not network traffic
  EXPECT_EQ(result.termination_time, 0);     // delivered at the same instant
}

TEST(ControllerTest, TimersFireAtTheRightTimeAndCancelWorks) {
  const RunResult result = run_simulation(test_config("test-timer"));
  EXPECT_TRUE(result.terminated);
  EXPECT_EQ(result.termination_time, from_ms(100));
  EXPECT_EQ(result.timers_fired, 8u);  // one per node; cancelled ones skipped
}

TEST(ControllerTest, HorizonStopsNonTerminatingRuns) {
  SimConfig cfg = test_config("test-silent");
  cfg.max_time_ms = 500;
  const RunResult result = run_simulation(cfg);
  EXPECT_FALSE(result.terminated);
  EXPECT_EQ(result.termination_time, kNoTime);
  EXPECT_LT(result.latency_ms(), 0.0);
}

TEST(ControllerTest, EventBudgetStopsRunaways) {
  SimConfig cfg = test_config("test-pingpong");
  cfg.max_events = 1000;
  cfg.max_time_ms = 1e9;
  const RunResult result = run_simulation(cfg);
  EXPECT_FALSE(result.terminated);
  EXPECT_LE(result.events_processed, 1001u);
}

TEST(ControllerTest, ContextExposesConfig) {
  SimConfig cfg = test_config("test-probe", 10);
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  for (const Decision& d : result.decisions) {
    EXPECT_EQ(d.value, hash_words({d.node, 10ULL, 3ULL,
                                   static_cast<std::uint64_t>(from_ms(1000))}));
  }
  // record_view entries captured.
  EXPECT_EQ(result.views.size(), 10u);
}

TEST(ControllerTest, FailStopNodesNeverRun) {
  SimConfig cfg = test_config("test-hello", 9);
  cfg.honest = 7;
  const RunResult result = run_simulation(cfg);
  EXPECT_EQ(result.failstopped.size(), 2u);
  EXPECT_EQ(result.honest.size(), 7u);
  for (const Decision& d : result.decisions) {
    for (const NodeId dead : result.failstopped) EXPECT_NE(d.node, dead);
  }
}

TEST(ControllerTest, FailStopSelectionDependsOnSeed) {
  SimConfig cfg = test_config("test-hello", 12);
  cfg.honest = 8;
  const RunResult a = run_simulation(cfg);
  cfg.seed = 77;
  const RunResult b = run_simulation(cfg);
  EXPECT_NE(a.failstopped, b.failstopped);  // overwhelmingly likely
}

TEST(ControllerTest, DeterministicTracePerSeed) {
  SimConfig cfg = test_config("test-hello");
  cfg.record_trace = true;
  const RunResult a = run_simulation(cfg);
  const RunResult b = run_simulation(cfg);
  EXPECT_EQ(a.trace.fingerprint(), b.trace.fingerprint());
  EXPECT_EQ(a.termination_time, b.termination_time);

  cfg.seed = 2;
  const RunResult c = run_simulation(cfg);
  EXPECT_NE(a.trace.fingerprint(), c.trace.fingerprint());
}

TEST(ControllerTest, CorruptionBudgetIsEnforced) {
  SimConfig cfg = test_config("test-hello", 10);  // f = 3
  cfg.attack = "test-greedy";
  const RunResult result = run_simulation(cfg);
  EXPECT_EQ(result.corrupted.size(), 3u);
  EXPECT_EQ(result.honest.size(), 7u);
}

TEST(ControllerTest, CorruptionBudgetSharedWithFailstops) {
  SimConfig cfg = test_config("test-hello", 10);  // f = 3
  cfg.honest = 8;                                 // 2 fail-stopped
  cfg.attack = "test-greedy";
  const RunResult result = run_simulation(cfg);
  EXPECT_EQ(result.corrupted.size(), 1u);  // 2 + 1 <= f
}

TEST(ControllerTest, ReroutedMessagesCountAsAttackerModified) {
  // The attacker rewrites dst only — payload pointer and delay untouched —
  // so the modified counter must pick up the reroute, not stay at zero.
  SimConfig cfg = test_config("test-pingpong");
  cfg.attack = "test-reroute";
  const RunResult result = run_simulation(cfg);
  EXPECT_GT(result.attacker_modified, 0u);
  EXPECT_EQ(result.attacker_dropped, 0u);
  EXPECT_EQ(result.attacker_delayed, 0u);
  EXPECT_EQ(result.attacker_duplicated, 0u);
}

TEST(ControllerTest, RunTwiceThrows) {
  Controller controller{test_config("test-hello")};
  (void)controller.run();
  EXPECT_THROW((void)controller.run(), std::logic_error);
}

TEST(ControllerTest, UnknownProtocolThrows) {
  SimConfig cfg = test_config("test-hello");
  cfg.protocol = "no-such-protocol";
  EXPECT_THROW(Controller{cfg}, std::invalid_argument);
}

TEST(ControllerTest, UnknownAttackThrows) {
  SimConfig cfg = test_config("test-hello");
  cfg.attack = "no-such-attack";
  EXPECT_THROW(Controller{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace bftsim

// Graceful degradation: a run that carries an attack cannot execute on the
// windowed-parallel driver (a global attacker's observation order is not
// lane-independent), but it must not *fail* either — sweeps set a global
// engine.intra_jobs and expect their attack points to run. The controller
// falls back to the serial engine for exactly those runs, records a
// structured warning, and produces the same bits as a plain serial run.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig attacked_config(std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.max_time_ms = 300'000;
  cfg.attack = "partition";
  json::Object params;
  params["resolve_ms"] = 8'000;
  params["mode"] = "drop";
  cfg.attack_params = json::Value{std::move(params)};
  cfg.record_trace = true;
  return cfg;
}

TEST(SerialFallbackTest, AttackPlusIntraJobsValidates) {
  SimConfig cfg = attacked_config();
  cfg.engine.intra_jobs = 4;
  EXPECT_NO_THROW(cfg.validate());
  cfg.engine.rng = EngineConfig::RngMode::kPerNode;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(SerialFallbackTest, FallbackIsBitIdenticalToTheSerialEngine) {
  const RunResult serial = run_simulation(attacked_config());
  EXPECT_TRUE(serial.warnings.empty());

  SimConfig cfg = attacked_config();
  cfg.engine.intra_jobs = 4;
  const RunResult fallback = run_simulation(cfg);
  EXPECT_EQ(fallback.termination_time, serial.termination_time);
  EXPECT_EQ(fallback.trace_fingerprint, serial.trace_fingerprint);
  EXPECT_EQ(fallback.trace_records, serial.trace_records);

  ASSERT_EQ(fallback.warnings.size(), 1u);
  EXPECT_EQ(fallback.warnings[0].code, "engine-serial-fallback");
  EXPECT_NE(fallback.warnings[0].detail.find("partition"), std::string::npos);
  EXPECT_NE(fallback.warnings[0].detail.find("intra_jobs=4"), std::string::npos);
}

TEST(SerialFallbackTest, ExplicitPerNodeRngAlsoFallsBack) {
  SimConfig cfg = attacked_config(3);
  cfg.engine.rng = EngineConfig::RngMode::kPerNode;
  const RunResult result = run_simulation(cfg);
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_EQ(result.warnings[0].code, "engine-serial-fallback");
  // Still the serial-engine bits, per-node RNG request notwithstanding.
  const RunResult serial = run_simulation(attacked_config(3));
  EXPECT_EQ(result.trace_fingerprint, serial.trace_fingerprint);
}

TEST(SerialFallbackTest, PassiveRunsStayOnTheWindowedEngine) {
  // No attack => the windowed driver runs as requested, no warning, and it
  // keeps its own determinism contract (bit-identical across intra_jobs at
  // per-node RNG) — proof the fallback above is a deliberate exception for
  // attacks, not the general path.
  SimConfig cfg = attacked_config();
  cfg.attack.clear();
  cfg.attack_params = json::Value{};
  cfg.engine.rng = EngineConfig::RngMode::kPerNode;  // windowed baseline
  SimConfig wide = cfg;
  wide.engine.intra_jobs = 4;
  const RunResult lanes1 = run_simulation(cfg);
  const RunResult lanes4 = run_simulation(wide);
  EXPECT_TRUE(lanes1.warnings.empty());
  EXPECT_TRUE(lanes4.warnings.empty());
  EXPECT_EQ(lanes4.termination_time, lanes1.termination_time);
  EXPECT_EQ(lanes4.trace_fingerprint, lanes1.trace_fingerprint);
}

}  // namespace
}  // namespace bftsim

// Geo-topology tests: cross-region delay penalties and their effect on
// consensus latency.
#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

TEST(TopologySpecTest, DisabledByDefault) {
  const TopologySpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_EQ(spec.adjust(from_ms(100), 0, 1), from_ms(100));
}

TEST(TopologySpecTest, RegionAssignmentIsRoundRobin) {
  TopologySpec spec;
  spec.regions = 3;
  EXPECT_EQ(spec.region_of(0), 0u);
  EXPECT_EQ(spec.region_of(1), 1u);
  EXPECT_EQ(spec.region_of(2), 2u);
  EXPECT_EQ(spec.region_of(3), 0u);
}

TEST(TopologySpecTest, AdjustAppliesOnlyAcrossRegions) {
  TopologySpec spec;
  spec.regions = 2;
  spec.cross_factor = 2.0;
  spec.cross_extra_ms = 50.0;
  // Nodes 0 and 2 share region 0: untouched.
  EXPECT_EQ(spec.adjust(from_ms(100), 0, 2), from_ms(100));
  // Nodes 0 and 1 differ: 100 * 2 + 50 = 250 ms.
  EXPECT_EQ(spec.adjust(from_ms(100), 0, 1), from_ms(250));
  EXPECT_EQ(spec.adjust(from_ms(100), 1, 0), from_ms(250));
}

TEST(TopologySpecTest, JsonRoundTrip) {
  TopologySpec spec;
  spec.regions = 4;
  spec.cross_factor = 1.5;
  spec.cross_extra_ms = 80.0;
  const TopologySpec back = TopologySpec::from_json(spec.to_json());
  EXPECT_EQ(back.regions, 4u);
  EXPECT_DOUBLE_EQ(back.cross_factor, 1.5);
  EXPECT_DOUBLE_EQ(back.cross_extra_ms, 80.0);
}

SimConfig geo_config(double cross_extra_ms, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(50, 10);  // fast LAN base
  cfg.seed = seed;
  TopologySpec spec;
  spec.regions = 2;
  spec.cross_extra_ms = cross_extra_ms;
  cfg.topology = spec.to_json();
  cfg.max_time_ms = 120'000;
  return cfg;
}

TEST(TopologySimTest, CrossRegionPenaltySlowsConsensus) {
  // A BFT quorum (11 of 16) necessarily spans both 8-node regions, so the
  // WAN penalty lands on the critical path.
  const RunResult local = run_simulation(geo_config(0));
  const RunResult geo = run_simulation(geo_config(200));
  ASSERT_TRUE(local.terminated);
  ASSERT_TRUE(geo.terminated);
  EXPECT_TRUE(geo.decisions_consistent());
  // Three hops, each paying the ~200 ms penalty on the quorum path.
  EXPECT_GT(geo.latency_ms(), local.latency_ms() + 400);
}

TEST(TopologySimTest, AllProtocolsSurviveGeoDistribution) {
  for (const char* protocol :
       {"pbft", "hotstuff-ns", "librabft", "tendermint", "algorand"}) {
    SimConfig cfg = geo_config(150, 3);
    cfg.protocol = protocol;
    cfg.decisions = 1;
    const RunResult result = run_simulation(cfg);
    ASSERT_TRUE(result.terminated) << protocol;
    EXPECT_TRUE(result.decisions_consistent()) << protocol;
  }
}

TEST(TopologySimTest, DeterministicWithTopology) {
  const RunResult a = run_simulation(geo_config(120, 7));
  const RunResult b = run_simulation(geo_config(120, 7));
  EXPECT_EQ(a.termination_time, b.termination_time);
}

}  // namespace
}  // namespace bftsim

#include "net/delay_model.hpp"

#include <gtest/gtest.h>

#include "core/stats.hpp"

namespace bftsim {
namespace {

TEST(DelaySamplerTest, ConstantDelay) {
  DelaySampler sampler{DelaySpec::constant(100)};
  Rng rng{1};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), from_ms(100));
}

TEST(DelaySamplerTest, UniformWithinBounds) {
  DelaySampler sampler{DelaySpec::uniform(100, 400)};
  Rng rng{2};
  for (int i = 0; i < 5000; ++i) {
    const Time t = sampler.sample(rng);
    EXPECT_GE(t, from_ms(100));
    EXPECT_LT(t, from_ms(400));
  }
}

TEST(DelaySamplerTest, NormalMatchesMoments) {
  DelaySampler sampler{DelaySpec::normal(250, 50)};
  Rng rng{3};
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(to_ms(sampler.sample(rng)));
  EXPECT_NEAR(acc.mean(), 250.0, 2.0);
  EXPECT_NEAR(acc.stddev(), 50.0, 2.0);
}

TEST(DelaySamplerTest, ExponentialMatchesMean) {
  DelaySampler sampler{DelaySpec::exponential(200)};
  Rng rng{4};
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(to_ms(sampler.sample(rng)));
  EXPECT_NEAR(acc.mean(), 200.0, 4.0);
}

TEST(DelaySamplerTest, MinClampPreventsNonPositiveDelays) {
  // N(1, 1000) would frequently sample negative delays without the clamp.
  DelaySpec spec = DelaySpec::normal(1, 1000);
  spec.min_ms = 1.0;
  DelaySampler sampler{spec};
  Rng rng{5};
  for (int i = 0; i < 10000; ++i) EXPECT_GE(sampler.sample(rng), from_ms(1));
}

TEST(DelaySamplerTest, MaxClampBoundsTail) {
  // A bounded tail is how the synchronous network model is emulated.
  DelaySpec spec = DelaySpec::exponential(100);
  spec.max_ms = 300.0;
  DelaySampler sampler{spec};
  Rng rng{6};
  bool hit_cap = false;
  for (int i = 0; i < 10000; ++i) {
    const Time t = sampler.sample(rng);
    EXPECT_LE(t, from_ms(300));
    hit_cap = hit_cap || t == from_ms(300);
  }
  EXPECT_TRUE(hit_cap);
}

TEST(DelaySamplerTest, DeterministicPerSeed) {
  DelaySampler sampler{DelaySpec::normal(250, 50)};
  Rng a{7};
  Rng b{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(a), sampler.sample(b));
}

}  // namespace
}  // namespace bftsim

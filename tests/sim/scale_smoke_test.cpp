// Large-n smoke tests (label `scale`, not tier1): a single PBFT run at
// n=1024 must complete, agree, stay within a resident-memory budget, and
// replay bit-identically. These runs take seconds in a release build —
// tier1 stays fast by excluding them; CI runs them in the scale-smoke job
// (`ctest -L scale`). Set BFTSIM_SCALE_XL=1 to also exercise n=4096.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

#include "core/memstats.hpp"
#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig scale_config(std::uint32_t n) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = n;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(50, 10);
  cfg.decisions = 1;
  cfg.seed = 11;
  return cfg;
}

/// All honest nodes must decide the same value at height 0, and every
/// honest node must have decided.
void expect_agreement(const RunResult& result, std::uint32_t n) {
  ASSERT_TRUE(result.terminated);
  ASSERT_FALSE(result.decisions.empty());
  const Value decided = result.decisions.front().value;
  std::size_t height0 = 0;
  for (const Decision& d : result.decisions) {
    if (d.height != 0) continue;
    ++height0;
    EXPECT_EQ(d.value, decided) << "node " << d.node << " disagrees";
  }
  EXPECT_EQ(height0, static_cast<std::size_t>(n));
}

TEST(ScaleSmoke, Pbft1024CompletesAndAgrees) {
  trim_heap();
  const std::size_t baseline = current_rss_bytes();
  const bool peak_reset = reset_peak_rss();

  const RunResult result = run_simulation(scale_config(1024));
  expect_agreement(result, 1024);

  // Resident-memory budget: the measured cost of this exact run is
  // ~206 MB (see the BENCH_engine.json scaling curve); 512 MB leaves
  // room for allocator and machine variance while still catching a
  // per-node memory regression of 2.5x or worse.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "RSS budget not meaningful under sanitizers";
#else
  constexpr std::size_t kBudgetBytes = 512u * 1024 * 1024;
  if (!peak_reset || peak_rss_bytes() == 0) {
    GTEST_SKIP() << "peak-RSS readings unavailable on this system";
  }
  const std::size_t peak = peak_rss_bytes();
  const std::size_t delta = peak > baseline ? peak - baseline : 0;
  EXPECT_LT(delta, kBudgetBytes)
      << "pbft n=1024 used " << delta / (1024 * 1024) << " MB resident";
#endif
}

TEST(ScaleSmoke, Pbft1024IsDeterministic) {
  const RunResult a = run_simulation(scale_config(1024));
  const RunResult b = run_simulation(scale_config(1024));
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.termination_time, b.termination_time);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].node, b.decisions[i].node);
    EXPECT_EQ(a.decisions[i].at, b.decisions[i].at);
    EXPECT_EQ(a.decisions[i].height, b.decisions[i].height);
    EXPECT_EQ(a.decisions[i].value, b.decisions[i].value);
  }
}

TEST(ScaleSmoke, Hotstuff1024CompletesAndAgrees) {
  SimConfig cfg;
  cfg.protocol = "hotstuff-ns";
  cfg.n = 1024;
  cfg.lambda_ms = 150;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.decisions = 3;
  cfg.seed = 4;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  ASSERT_FALSE(result.decisions.empty());
  const Value decided = result.decisions.front().value;
  for (const Decision& d : result.decisions) {
    if (d.height == 0) EXPECT_EQ(d.value, decided);
  }
}

TEST(ScaleSmoke, Pbft1024WindowedIntraJobs4) {
  // The windowed-parallel driver at intra_jobs=4 (CI runs this suite under
  // TSan in the tsan-scale job): the run must complete, agree, match its
  // serial per-node-RNG baseline bit for bit, and stay inside a wall
  // budget generous enough for sanitizer overhead.
  SimConfig cfg = scale_config(1024);
  cfg.engine.rng = EngineConfig::RngMode::kPerNode;
  cfg.engine.intra_jobs = 1;

  const auto start = std::chrono::steady_clock::now();
  const RunResult serial = run_simulation(cfg);
  cfg.engine.intra_jobs = 4;
  const RunResult parallel = run_simulation(cfg);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  expect_agreement(parallel, 1024);
  EXPECT_EQ(parallel.events_processed, serial.events_processed);
  EXPECT_EQ(parallel.messages_sent, serial.messages_sent);
  EXPECT_EQ(parallel.messages_delivered, serial.messages_delivered);
  EXPECT_EQ(parallel.termination_time, serial.termination_time);
  ASSERT_EQ(parallel.decisions.size(), serial.decisions.size());
  for (std::size_t i = 0; i < parallel.decisions.size(); ++i) {
    EXPECT_EQ(parallel.decisions[i].node, serial.decisions[i].node);
    EXPECT_EQ(parallel.decisions[i].at, serial.decisions[i].at);
  }
  // Both runs together; TSan slows the engine ~10x, so the budget is wide
  // — it exists to catch windowed-driver livelock, not to measure speed.
  EXPECT_LT(seconds, 300.0) << "windowed n=1024 run exceeded the wall budget";
}

TEST(ScaleSmoke, Pbft4096Completes) {
  if (std::getenv("BFTSIM_SCALE_XL") == nullptr) {
    GTEST_SKIP() << "set BFTSIM_SCALE_XL=1 to run the n=4096 smoke "
                    "(~28M events, tens of seconds)";
  }
  const RunResult result = run_simulation(scale_config(4096));
  expect_agreement(result, 4096);
}

}  // namespace
}  // namespace bftsim

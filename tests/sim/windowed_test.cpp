// Windowed-parallel driver tests (sim/windowed.hpp): the window/lookahead
// calculator in isolation, the determinism matrix replaying the recorded
// golden configurations at intra_jobs ∈ {2, 3, 8} against the serial
// per-node-RNG baseline (intra_jobs = 1), and fault-layer interaction
// (crash / link-flap / corruption / clock-skew scenarios must stay
// bit-identical across lane counts).
#include "sim/windowed.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/json.hpp"
#include "sim/simulation.hpp"

#ifndef BFTSIM_REPO_ROOT
#error "BFTSIM_REPO_ROOT must point at the repository checkout"
#endif

namespace bftsim {
namespace {

// --- window calculator ---------------------------------------------------------

SimConfig base_cfg() {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 16;
  cfg.delay = DelaySpec::uniform(200.0, 400.0);
  cfg.seed = 7;
  cfg.decisions = 2;
  return cfg;
}

TEST(WindowCalc, ConstantDelayInfimumIsTheDelay) {
  SimConfig cfg = base_cfg();
  cfg.delay = DelaySpec::constant(250.0);
  EXPECT_EQ(compute_lookahead(cfg), from_ms(250.0));
}

TEST(WindowCalc, ConstantZeroDelayDegeneratesToSerial) {
  SimConfig cfg = base_cfg();
  cfg.delay = DelaySpec::constant(0.0);
  cfg.delay.min_ms = 0.0;  // the factory default clamp would rescue it
  cfg.engine.intra_jobs = 8;
  EXPECT_EQ(compute_lookahead(cfg), 0);
  EXPECT_EQ(effective_lanes(cfg), 1u);
}

TEST(WindowCalc, UniformLowerEdge) {
  SimConfig cfg = base_cfg();
  cfg.delay = DelaySpec::uniform(200.0, 400.0);
  EXPECT_EQ(compute_lookahead(cfg), from_ms(200.0));
}

TEST(WindowCalc, UnboundedTailsRelyOnTheMinClamp) {
  SimConfig cfg = base_cfg();
  cfg.delay = DelaySpec::normal(250.0, 50.0);  // min_ms = 1 by default
  EXPECT_EQ(compute_lookahead(cfg), from_ms(1.0));
  cfg.delay = DelaySpec::exponential(100.0);
  cfg.delay.min_ms = 0.0;
  EXPECT_EQ(compute_lookahead(cfg), 0);
  EXPECT_EQ(effective_lanes(cfg), 1u);
}

TEST(WindowCalc, MaxClampCapsTheInfimum) {
  SimConfig cfg = base_cfg();
  cfg.delay = DelaySpec::constant(250.0);
  cfg.delay.max_ms = 100.0;
  EXPECT_EQ(compute_lookahead(cfg), from_ms(100.0));
}

TEST(WindowCalc, CrossRegionTransformCanUndercutTheFlatBound) {
  SimConfig cfg = base_cfg();
  cfg.delay = DelaySpec::constant(100.0);
  json::Object topo;
  topo["regions"] = std::int64_t{2};
  topo["cross_factor"] = 0.5;
  topo["cross_extra_ms"] = 10.0;
  cfg.topology = json::Value(topo);
  // min(100 ms, 100 * 0.5 + 10 ms) = 60 ms.
  EXPECT_EQ(compute_lookahead(cfg), from_ms(60.0));
  // A penalizing topology (factor >= 1) never raises the bound.
  topo["cross_factor"] = 2.0;
  cfg.topology = json::Value(topo);
  EXPECT_EQ(compute_lookahead(cfg), from_ms(100.0));
}

TEST(WindowCalc, SkewLargerThanTheDelayCollapsesTheWindow) {
  SimConfig cfg = base_cfg();
  cfg.delay = DelaySpec::constant(5.0);
  cfg.faults.clock.max_skew_ms = 10.0;
  cfg.engine.intra_jobs = 4;
  EXPECT_EQ(compute_lookahead(cfg), 0);
  EXPECT_EQ(effective_lanes(cfg), 1u);
}

TEST(WindowCalc, SkewAndDriftShrinkTheWindow) {
  SimConfig cfg = base_cfg();
  cfg.delay = DelaySpec::constant(100.0);
  cfg.faults.clock.max_skew_ms = 10.0;
  cfg.faults.clock.max_drift = 0.1;
  // 100 ms - 10 ms skew - 100 ms * 0.1 drift = 80 ms.
  EXPECT_EQ(compute_lookahead(cfg), from_ms(80.0));
}

TEST(WindowCalc, EffectiveLanesClampToNodeCount) {
  SimConfig cfg = base_cfg();
  cfg.n = 4;
  cfg.engine.intra_jobs = 8;
  EXPECT_EQ(effective_lanes(cfg), 4u);
  cfg.engine.intra_jobs = 1;
  EXPECT_EQ(effective_lanes(cfg), 1u);
}

// --- determinism matrix --------------------------------------------------------

/// Full bit-identity check between two runs: termination, every counter,
/// every decision / view record, and the trace fingerprint. Field-by-field
/// so a regression names what moved.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.terminated, b.terminated);
  EXPECT_EQ(a.termination_time, b.termination_time);
  EXPECT_EQ(a.termination_reason, b.termination_reason);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_injected, b.messages_injected);
  EXPECT_EQ(a.messages_corrupted, b.messages_corrupted);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.timers_fired, b.timers_fired);
  EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint);
  EXPECT_EQ(a.trace_records, b.trace_records);
  EXPECT_EQ(a.honest, b.honest);
  EXPECT_EQ(a.failstopped, b.failstopped);
  EXPECT_EQ(a.corrupted, b.corrupted);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].node, b.decisions[i].node) << "decision " << i;
    EXPECT_EQ(a.decisions[i].at, b.decisions[i].at) << "decision " << i;
    EXPECT_EQ(a.decisions[i].height, b.decisions[i].height) << "decision " << i;
    EXPECT_EQ(a.decisions[i].value, b.decisions[i].value) << "decision " << i;
  }
  ASSERT_EQ(a.views.size(), b.views.size());
  for (std::size_t i = 0; i < a.views.size(); ++i) {
    EXPECT_EQ(a.views[i].node, b.views[i].node) << "view " << i;
    EXPECT_EQ(a.views[i].at, b.views[i].at) << "view " << i;
    EXPECT_EQ(a.views[i].view, b.views[i].view) << "view " << i;
  }
}

/// Runs `cfg` through the windowed driver at the given lane count (the
/// per-node RNG baseline when jobs == 1) and at jobs > 1 the parallel path.
RunResult run_windowed(SimConfig cfg, std::uint32_t jobs) {
  cfg.engine.intra_jobs = jobs;
  cfg.engine.rng = EngineConfig::RngMode::kPerNode;
  cfg.record_trace = true;  // fingerprint every comparison
  return run_simulation(cfg);
}

void expect_lane_invariant(const SimConfig& cfg) {
  const RunResult serial = run_windowed(cfg, 1);
  for (const std::uint32_t jobs : {2u, 3u, 8u}) {
    SCOPED_TRACE("intra_jobs=" + std::to_string(jobs));
    expect_identical(run_windowed(cfg, jobs), serial);
  }
}

TEST(WindowedDeterminism, GoldenConfigsAreLaneCountInvariant) {
  const std::string path =
      std::string(BFTSIM_REPO_ROOT) + "/tests/data/engine_goldens.json";
  const json::Value doc = json::parse_file(path);
  const json::Array& points = doc.as_object().at("aggregate_points").as_array();
  ASSERT_GE(points.size(), 20u);
  std::size_t replayed = 0;
  for (const json::Value& point : points) {
    const json::Object& o = point.as_object();
    const SimConfig cfg = SimConfig::from_json(o.at("config"));
    // Attacks are excluded from windowed execution by config validation
    // (a global adaptive adversary is inherently serial).
    if (!cfg.attack.empty()) continue;
    SCOPED_TRACE(o.at("name").as_string());
    expect_lane_invariant(cfg);
    ++replayed;
  }
  EXPECT_GE(replayed, 10u) << "golden corpus lost its attack-free configs";
}

TEST(WindowedDeterminism, DecidedRunsMatchAcrossProtocols) {
  for (const char* protocol : {"pbft", "hotstuff-ns", "tendermint", "librabft"}) {
    SCOPED_TRACE(protocol);
    SimConfig cfg = base_cfg();
    cfg.protocol = protocol;
    cfg.decisions = 3;
    expect_lane_invariant(cfg);
  }
}

TEST(WindowedDeterminism, CostModelRunsAreLaneCountInvariant) {
  SimConfig cfg = base_cfg();
  cfg.cost.verify_ms = 0.4;
  cfg.cost.sign_ms = 0.9;
  expect_lane_invariant(cfg);
}

TEST(WindowedDeterminism, GeoTopologyRunsAreLaneCountInvariant) {
  SimConfig cfg = base_cfg();
  json::Object topo;
  topo["regions"] = std::int64_t{4};
  topo["cross_factor"] = 1.5;
  topo["cross_extra_ms"] = 40.0;
  cfg.topology = json::Value(topo);
  expect_lane_invariant(cfg);
}

// --- fault-layer interaction ---------------------------------------------------

TEST(WindowedFaults, CrashAndLinkFlapScenariosAreLaneCountInvariant) {
  SimConfig cfg = base_cfg();
  cfg.protocol = "pbft";
  cfg.decisions = 3;
  cfg.max_time_ms = 120'000.0;
  cfg.faults.crashes.push_back({/*node=*/3, /*at_ms=*/500.0, /*duration_ms=*/1500.0});
  cfg.faults.crashes.push_back({/*node=*/7, /*at_ms=*/900.0, /*duration_ms=*/400.0});
  cfg.faults.link_flaps.push_back(
      {/*a=*/1, /*b=*/2, /*at_ms=*/200.0, /*duration_ms=*/1800.0});
  cfg.faults.link_flaps.push_back(
      {/*a=*/0, /*b=*/5, /*at_ms=*/700.0, /*duration_ms=*/600.0});
  expect_lane_invariant(cfg);
}

TEST(WindowedFaults, CorruptionDrawsArePerSenderAndLaneCountInvariant) {
  SimConfig cfg = base_cfg();
  cfg.decisions = 3;
  cfg.faults.corruption.rate = 0.2;
  cfg.faults.corruption.start_ms = 0.0;
  cfg.faults.corruption.end_ms = 0.0;  // whole run
  const RunResult serial = run_windowed(cfg, 1);
  EXPECT_GT(serial.messages_corrupted, 0u) << "scenario corrupts nothing";
  for (const std::uint32_t jobs : {2u, 3u, 8u}) {
    SCOPED_TRACE("intra_jobs=" + std::to_string(jobs));
    expect_identical(run_windowed(cfg, jobs), serial);
  }
}

TEST(WindowedFaults, ClockSkewShrinksTheWindowButStaysInvariant) {
  SimConfig cfg = base_cfg();
  cfg.faults.clock.max_skew_ms = 10.0;
  cfg.faults.clock.max_drift = 0.01;
  ASSERT_GT(compute_lookahead(cfg), 0);
  expect_lane_invariant(cfg);
}

TEST(WindowedFaults, RandomWindowScenariosAreLaneCountInvariant) {
  SimConfig cfg = base_cfg();
  cfg.decisions = 3;
  cfg.faults.random_crashes = {/*count=*/3, /*start_ms=*/0.0, /*end_ms=*/2000.0,
                               /*min_duration_ms=*/100.0,
                               /*max_duration_ms=*/1200.0};
  cfg.faults.random_link_flaps = {/*count=*/4, /*start_ms=*/0.0,
                                  /*end_ms=*/2500.0, /*min_duration_ms=*/100.0,
                                  /*max_duration_ms=*/900.0};
  expect_lane_invariant(cfg);
}

// --- self-degradation end to end ----------------------------------------------

TEST(WindowedDeterminism, ZeroLookaheadRunsServeOneLane) {
  SimConfig cfg = base_cfg();
  cfg.delay = DelaySpec::constant(0.0);
  cfg.delay.min_ms = 0.0;
  cfg.decisions = 2;
  // intra_jobs = 8 self-degrades to one lane; the run must still complete
  // and match the explicit one-lane execution bit for bit.
  expect_identical(run_windowed(cfg, 8), run_windowed(cfg, 1));
}

}  // namespace
}  // namespace bftsim

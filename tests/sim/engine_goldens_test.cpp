// Determinism regression: replays the recorded golden aggregates
// (tests/data/engine_goldens.json, produced by tools/record_goldens with
// the pre-overhaul engine) against the current engine and requires
// bit-identical deterministic fields. This is the contract that lets the
// hot path be rewritten freely: any change to pop order, RNG consumption
// order, message fan-out order or metrics accounting shows up here.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "baseline/baseline.hpp"
#include "core/config.hpp"
#include "core/json.hpp"
#include "runner/runner.hpp"
#include "sim/simulation.hpp"

#ifndef BFTSIM_REPO_ROOT
#error "BFTSIM_REPO_ROOT must point at the repository checkout"
#endif

namespace bftsim {
namespace {

const std::string kGoldensPath =
    std::string(BFTSIM_REPO_ROOT) + "/tests/data/engine_goldens.json";

Summary parse_summary(const json::Value& v) {
  const json::Object& o = v.as_object();
  Summary s;
  s.count = static_cast<std::size_t>(o.at("count").as_int());
  s.mean = o.at("mean").as_number();
  s.stddev = o.at("stddev").as_number();
  s.min = o.at("min").as_number();
  s.max = o.at("max").as_number();
  s.median = o.at("median").as_number();
  s.p90 = o.at("p90").as_number();
  s.p99 = o.at("p99").as_number();
  return s;
}

Aggregate parse_aggregate(const json::Value& v) {
  const json::Object& o = v.as_object();
  Aggregate a;
  a.runs = static_cast<std::size_t>(o.at("runs").as_int());
  a.timeouts = static_cast<std::size_t>(o.at("timeouts").as_int());
  a.latency_ms = parse_summary(o.at("latency_ms"));
  a.per_decision_latency_ms = parse_summary(o.at("per_decision_latency_ms"));
  a.messages = parse_summary(o.at("messages"));
  a.per_decision_messages = parse_summary(o.at("per_decision_messages"));
  a.events = parse_summary(o.at("events"));
  a.wall_seconds_total = o.at("wall_seconds_total").as_number();
  return a;
}

// Field-by-field comparison so a regression names the field that moved
// (equivalent() alone would only say "not equal"). Doubles are compared
// exactly: the recorder serializes with round-trip precision and the
// golden contract is bit-identity, not tolerance.
void expect_summary_eq(const Summary& actual, const Summary& expected,
                       const char* which) {
  SCOPED_TRACE(which);
  EXPECT_EQ(actual.count, expected.count);
  EXPECT_EQ(actual.mean, expected.mean);
  EXPECT_EQ(actual.stddev, expected.stddev);
  EXPECT_EQ(actual.min, expected.min);
  EXPECT_EQ(actual.max, expected.max);
  EXPECT_EQ(actual.median, expected.median);
  EXPECT_EQ(actual.p90, expected.p90);
  EXPECT_EQ(actual.p99, expected.p99);
}

void expect_aggregate_eq(const Aggregate& actual, const Aggregate& expected) {
  EXPECT_EQ(actual.runs, expected.runs);
  EXPECT_EQ(actual.timeouts, expected.timeouts);
  expect_summary_eq(actual.latency_ms, expected.latency_ms, "latency_ms");
  expect_summary_eq(actual.per_decision_latency_ms,
                    expected.per_decision_latency_ms, "per_decision_latency_ms");
  expect_summary_eq(actual.messages, expected.messages, "messages");
  expect_summary_eq(actual.per_decision_messages,
                    expected.per_decision_messages, "per_decision_messages");
  expect_summary_eq(actual.events, expected.events, "events");
  EXPECT_TRUE(equivalent(actual, expected));
}

TEST(EngineGoldensTest, AggregatePointsReplayBitIdentical) {
  const json::Value doc = json::parse_file(kGoldensPath);
  const json::Array& points = doc.as_object().at("aggregate_points").as_array();
  ASSERT_GE(points.size(), 20u);
  for (const json::Value& point : points) {
    const json::Object& o = point.as_object();
    SCOPED_TRACE(o.at("name").as_string());
    const SimConfig cfg = SimConfig::from_json(o.at("config"));
    const auto repeats = static_cast<std::size_t>(o.at("repeats").as_int());
    const Aggregate expected = parse_aggregate(o.at("aggregate"));
    expect_aggregate_eq(run_repeated(cfg, repeats), expected);
  }
}

TEST(EngineGoldensTest, SinglePointsReplayBitIdentical) {
  const json::Value doc = json::parse_file(kGoldensPath);
  const json::Array& points = doc.as_object().at("single_points").as_array();
  ASSERT_GE(points.size(), 3u);
  for (const json::Value& point : points) {
    const json::Object& o = point.as_object();
    SCOPED_TRACE(o.at("name").as_string());
    const SimConfig cfg = SimConfig::from_json(o.at("config"));
    const RunResult r = o.at("baseline").as_bool()
                            ? baseline::run_baseline_simulation(cfg)
                            : run_simulation(cfg);
    const json::Object& want = o.at("result").as_object();
    EXPECT_EQ(r.terminated, want.at("terminated").as_bool());
    EXPECT_EQ(static_cast<std::int64_t>(r.termination_time),
              want.at("termination_time").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.events_processed),
              want.at("events_processed").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.messages_sent),
              want.at("messages_sent").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.messages_delivered),
              want.at("messages_delivered").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.messages_dropped),
              want.at("messages_dropped").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.bytes_sent),
              want.at("bytes_sent").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.timers_fired),
              want.at("timers_fired").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.decisions.size()),
              want.at("decision_count").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.views.size()),
              want.at("view_count").as_int());
  }
}

}  // namespace
}  // namespace bftsim

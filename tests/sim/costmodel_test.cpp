// Computation-cost model tests (the paper's §III-A3 future-work feature).
#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig pbft_config(double verify_ms, double sign_ms,
                      std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.cost.verify_ms = verify_ms;
  cfg.cost.sign_ms = sign_ms;
  cfg.max_time_ms = 120'000;
  return cfg;
}

TEST(CostModelTest, DisabledByDefault) {
  EXPECT_FALSE(CostModel{}.enabled());
  EXPECT_TRUE((CostModel{0.5, 0.0}).enabled());
  EXPECT_TRUE((CostModel{0.0, 0.5}).enabled());
}

TEST(CostModelTest, ZeroCostMatchesBaseline) {
  const RunResult a = run_simulation(pbft_config(0, 0));
  SimConfig no_model = pbft_config(0, 0);
  no_model.cost = CostModel{};
  const RunResult b = run_simulation(no_model);
  EXPECT_EQ(a.termination_time, b.termination_time);
}

TEST(CostModelTest, LatencyGrowsMonotonicallyWithVerifyCost) {
  Time prev = 0;
  for (const double verify : {0.0, 1.0, 5.0, 20.0}) {
    const RunResult r = run_simulation(pbft_config(verify, 0));
    ASSERT_TRUE(r.terminated) << verify;
    EXPECT_TRUE(r.decisions_consistent());
    EXPECT_GE(r.termination_time, prev) << verify;
    prev = r.termination_time;
  }
}

TEST(CostModelTest, VerificationSerializesOnTheReceiverCpu) {
  // PBFT's prepare phase delivers ~n messages nearly simultaneously to
  // every node: with a 20 ms verification each, the quorum (11th message)
  // waits behind ~10 earlier verifications — at least ~200 ms extra.
  const RunResult cheap = run_simulation(pbft_config(0, 0));
  const RunResult costly = run_simulation(pbft_config(20, 0));
  ASSERT_TRUE(costly.terminated);
  EXPECT_GT(costly.termination_time - cheap.termination_time, from_ms(150));
}

TEST(CostModelTest, SigningCostsChargeTheSender) {
  const RunResult unsigned_run = run_simulation(pbft_config(0, 0));
  const RunResult signed_run = run_simulation(pbft_config(0, 25));
  ASSERT_TRUE(signed_run.terminated);
  EXPECT_GT(signed_run.termination_time, unsigned_run.termination_time);
}

TEST(CostModelTest, JsonRoundTrip) {
  SimConfig cfg = pbft_config(1.5, 0.25);
  const SimConfig back = SimConfig::from_json(cfg.to_json());
  EXPECT_DOUBLE_EQ(back.cost.verify_ms, 1.5);
  EXPECT_DOUBLE_EQ(back.cost.sign_ms, 0.25);

  // Disabled model is omitted from JSON and defaults back to zero.
  SimConfig plain = pbft_config(0, 0);
  const SimConfig plain_back = SimConfig::from_json(plain.to_json());
  EXPECT_FALSE(plain_back.cost.enabled());
}

TEST(CostModelTest, NegativeCostsRejected) {
  SimConfig cfg = pbft_config(0, 0);
  cfg.cost.verify_ms = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(CostModelTest, ThroughputSaturatesUnderLoad) {
  // Throughput estimation (the feature's purpose): per-decision latency of
  // a 10-decision HotStuff run grows when verification is expensive, i.e.
  // the sustainable decision rate drops.
  SimConfig cfg;
  cfg.protocol = "hotstuff-ns";
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.decisions = 10;
  cfg.seed = 3;

  const RunResult free_run = run_simulation(cfg);
  cfg.cost.verify_ms = 10;
  cfg.cost.sign_ms = 10;
  const RunResult costly_run = run_simulation(cfg);
  ASSERT_TRUE(free_run.terminated);
  ASSERT_TRUE(costly_run.terminated);
  EXPECT_GT(costly_run.per_decision_latency_ms(),
            free_run.per_decision_latency_ms());
}

TEST(CostModelTest, DeterministicWithCosts) {
  const RunResult a = run_simulation(pbft_config(5, 2, 9));
  const RunResult b = run_simulation(pbft_config(5, 2, 9));
  EXPECT_EQ(a.termination_time, b.termination_time);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
}

}  // namespace
}  // namespace bftsim

// Unit tests for the attack scenarios added for the adversary strategy
// search: eclipse, adaptive-partition, delay-schedule, flood and
// pbft-late-equivocation. Each attack is a pure function of its parameter
// vector, so beyond behavior we pin two-run bit-identity and the attacker
// activity counters the search's damage oracles consume.
#include <gtest/gtest.h>

#include <initializer_list>
#include <map>
#include <string>
#include <utility>

#include "attacker/attacks.hpp"
#include "attacker/registry.hpp"
#include "core/json.hpp"
#include "runner/export.hpp"
#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig base_config(const std::string& protocol, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.max_time_ms = 300'000;
  return cfg;
}

json::Value params(
    std::initializer_list<std::pair<const char*, json::Value>> kvs) {
  json::Object o;
  for (const auto& [key, value] : kvs) o[key] = value;
  return json::Value{std::move(o)};
}

TEST(NewAttackRegistryTest, SearchAttacksRegistered) {
  auto& reg = AttackRegistry::instance();
  EXPECT_TRUE(reg.contains("eclipse"));
  EXPECT_TRUE(reg.contains("adaptive-partition"));
  EXPECT_TRUE(reg.contains("delay-schedule"));
  EXPECT_TRUE(reg.contains("flood"));
  EXPECT_TRUE(reg.contains("pbft-late-equivocation"));
}

TEST(EclipseAttackTest, DropModeIsolatesTheVictim) {
  SimConfig cfg = base_config("pbft");
  cfg.attack = "eclipse";
  cfg.attack_params = params({{"victim", 5},
                              {"keep", 0},
                              {"start_ms", 0},
                              {"duration_ms", 20'000},
                              {"mode", "drop"}});
  cfg.max_time_ms = 60'000;  // the victim may never catch up; bound the run
  cfg.record_trace = true;
  const RunResult result = run_simulation(cfg);
  // Nothing reaches or leaves node 5 while the eclipse window is open.
  for (const TraceRecord& rec : result.trace.records()) {
    if (rec.kind != TraceKind::kDeliver || rec.a == rec.b) continue;
    if (rec.a == 5 || rec.b == 5) {
      EXPECT_GE(rec.at, from_ms(20'000))
          << "victim traffic at " << to_ms(rec.at) << "ms";
    }
  }
  EXPECT_GT(result.attacker_dropped, 0u);
  EXPECT_EQ(result.attacker_delayed, 0u);
  // Dropped messages are gone for good: either the victim recovered late
  // or the run missed its all-honest decision target entirely.
  EXPECT_TRUE(!result.terminated || result.latency_ms() > 20'000);
  EXPECT_FALSE(result.decisions.empty());  // the other 15 made progress
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(EclipseAttackTest, DelayModeReleasesHeldTrafficAtWindowEnd) {
  SimConfig cfg = base_config("pbft");
  cfg.attack = "eclipse";
  cfg.attack_params = params({{"victim", 5},
                              {"keep", 0},
                              {"start_ms", 0},
                              {"duration_ms", 10'000},
                              {"mode", "delay"}});
  cfg.record_trace = true;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  std::size_t held = 0;
  for (const TraceRecord& rec : result.trace.records()) {
    if (rec.kind != TraceKind::kDeliver || rec.a == rec.b) continue;
    if (rec.a == 5 || rec.b == 5) {
      EXPECT_GE(rec.at, from_ms(10'000));
      ++held;
    }
  }
  EXPECT_GT(held, 0u);  // held messages were eventually delivered
  EXPECT_EQ(result.attacker_dropped, 0u);
  EXPECT_GT(result.attacker_delayed, 0u);
}

TEST(EclipseAttackTest, KeepPreservesChosenLifelines) {
  // keep=3 leaves the victim linked to the three lowest non-victim ids
  // (1, 2, 3 for victim 0): any in-window victim traffic involves only
  // them. Delay mode releases the rest at the window end, so the victim
  // catches up and the run still terminates.
  SimConfig cfg = base_config("pbft");
  cfg.attack = "eclipse";
  cfg.attack_params = params({{"victim", 0},
                              {"keep", 3},
                              {"start_ms", 0},
                              {"duration_ms", 20'000},
                              {"mode", "delay"}});
  cfg.record_trace = true;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  std::size_t lifeline = 0;
  for (const TraceRecord& rec : result.trace.records()) {
    if (rec.kind != TraceKind::kDeliver || rec.a == rec.b) continue;
    if (rec.at >= from_ms(20'000)) continue;
    if (rec.a != 0 && rec.b != 0) continue;
    const NodeId peer = rec.a == 0 ? rec.b : rec.a;
    EXPECT_LE(peer, 3u) << "non-lifeline peer " << peer << " at "
                        << to_ms(rec.at) << "ms";
    ++lifeline;
  }
  EXPECT_GT(lifeline, 0u);
}

TEST(AdaptivePartitionAttackTest, RotationChangesTheEquivalenceClasses) {
  // The whole point of the adaptive variant: epochs change the *cut*, not
  // just the group labels. Epoch 0 is the static parity cut; epoch 1 must
  // rejoin some pair epoch 0 separated and split some pair it kept
  // together. (A uniform label shift like (id + epoch) mod subnets passes
  // neither check — the equivalence classes never move.)
  constexpr std::uint32_t kSubnets = 2;
  constexpr NodeId kNodes = 16;
  for (NodeId id = 0; id < kNodes; ++id) {
    EXPECT_EQ(adaptive_partition_group(id, 0, kSubnets), id % kSubnets);
    EXPECT_LT(adaptive_partition_group(id, 1, kSubnets), kSubnets);
  }
  bool rejoined = false;
  bool split = false;
  for (NodeId a = 0; a < kNodes; ++a) {
    for (NodeId b = a + 1; b < kNodes; ++b) {
      const bool apart0 = adaptive_partition_group(a, 0, kSubnets) !=
                          adaptive_partition_group(b, 0, kSubnets);
      const bool apart1 = adaptive_partition_group(a, 1, kSubnets) !=
                          adaptive_partition_group(b, 1, kSubnets);
      if (apart0 && !apart1) rejoined = true;
      if (!apart0 && apart1) split = true;
    }
  }
  EXPECT_TRUE(rejoined);
  EXPECT_TRUE(split);
}

TEST(AdaptivePartitionAttackTest, BlocksCrossGroupTrafficUntilResolve) {
  // Epoch e covers [e·period, (e+1)·period). Drops are recorded at send
  // time, so the trace pins each epoch's cut exactly: every drop before
  // resolve must be cross-group under the cut of its epoch, and nothing is
  // dropped after resolution.
  SimConfig cfg = base_config("pbft");
  cfg.attack = "adaptive-partition";
  cfg.attack_params = params({{"subnets", 2},
                              {"period_ms", 2'000},
                              {"resolve_ms", 15'000},
                              {"mode", "drop"}});
  cfg.record_trace = true;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  const Time period = from_ms(2'000);
  bool rejoined_pair_delivered = false;
  for (const TraceRecord& rec : result.trace.records()) {
    if (rec.a == rec.b) continue;
    if (rec.kind == TraceKind::kDrop) {
      EXPECT_LT(rec.at, from_ms(15'000)) << "drop after resolve";
      // At an exact period boundary the epoch-flip timer and same-instant
      // sends race in queue order; skip the ambiguous tick.
      if (rec.at % period == 0) continue;
      const auto epoch = static_cast<std::uint64_t>(rec.at / period);
      EXPECT_NE(adaptive_partition_group(rec.a, epoch, 2),
                adaptive_partition_group(rec.b, epoch, 2))
          << "same-group drop at " << to_ms(rec.at) << "ms";
    } else if (rec.kind == TraceKind::kDeliver && rec.at < from_ms(15'000) &&
               rec.a % 2 != rec.b % 2) {
      // A pair the epoch-0 cut separates communicated before resolve: a
      // later epoch genuinely re-cut the network.
      rejoined_pair_delivered = true;
    }
  }
  EXPECT_TRUE(rejoined_pair_delivered);
  EXPECT_GT(result.attacker_dropped, 0u);
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(DelayScheduleAttackTest, StallRaisesDecisionLatency) {
  const RunResult clean = run_simulation(base_config("pbft"));
  SimConfig cfg = base_config("pbft");
  cfg.attack = "delay-schedule";
  cfg.attack_params = params({{"type", "pbft/pre-prepare"},
                              {"mode", "stall"},
                              {"amount_ms", 2'000},
                              {"duration_ms", 60'000}});
  const RunResult attacked = run_simulation(cfg);
  ASSERT_TRUE(attacked.terminated);
  EXPECT_GT(attacked.latency_ms(), clean.latency_ms() + 1'000);
  EXPECT_GT(attacked.attacker_delayed, 0u);
  EXPECT_EQ(attacked.attacker_dropped, 0u);
  EXPECT_EQ(attacked.attacker_modified, 0u);
  EXPECT_TRUE(attacked.decisions_consistent());
}

TEST(DelayScheduleAttackTest, RushNeverPullsBelowTheModelMinimum) {
  // Rushing by far more than the mean delay clamps at the delay spec's
  // min_ms: every rushed delivery still arrives strictly after its send.
  SimConfig cfg = base_config("pbft");
  cfg.attack = "delay-schedule";
  cfg.attack_params = params({{"type", "pbft/prepare"},
                              {"mode", "rush"},
                              {"amount_ms", 10'000},
                              {"duration_ms", 60'000}});
  cfg.record_trace = true;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_GT(result.attacker_delayed, 0u);  // re-timed, counted as delayed
  std::map<std::uint64_t, Time> sent_at;
  std::size_t rushed = 0;
  for (const TraceRecord& rec : result.trace.records()) {
    if (rec.type != "pbft/prepare" || rec.a == rec.b) continue;  // no self-sends
    if (rec.kind == TraceKind::kSend) sent_at[rec.msg_id] = rec.at;
    if (rec.kind == TraceKind::kDeliver) {
      const auto it = sent_at.find(rec.msg_id);
      ASSERT_NE(it, sent_at.end());
      EXPECT_GE(rec.at, it->second + from_ms(1.0));  // clamped at min_ms
      ++rushed;
    }
  }
  EXPECT_GT(rushed, 0u);
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(FloodAttackTest, DuplicatesAreCountedAndHarmless) {
  const RunResult clean = run_simulation(base_config("pbft"));
  SimConfig cfg = base_config("pbft");
  cfg.attack = "flood";
  cfg.attack_params = params({{"copies", 3},
                              {"spread_ms", 1},
                              {"start_ms", 0},
                              {"duration_ms", 10'000}});
  const RunResult attacked = run_simulation(cfg);
  ASSERT_TRUE(attacked.terminated);
  EXPECT_GT(attacked.attacker_duplicated, 0u);
  EXPECT_GT(attacked.messages_delivered, clean.messages_delivered);
  // Handlers are idempotent: duplicates change nothing about the outcome.
  EXPECT_TRUE(attacked.decisions_consistent());
}

TEST(PbftLateEquivocationTest, CapturesTheLeaderAndInjectsConflicts) {
  SimConfig cfg = base_config("pbft", 2);
  cfg.attack = "pbft-late-equivocation";
  cfg.attack_params = params({{"view", 0}, {"strike_ms", 500}});
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  ASSERT_EQ(result.corrupted.size(), 1u);
  EXPECT_EQ(result.corrupted[0], 0u);  // round-robin leader of view 0
  EXPECT_GT(result.messages_injected, 0u);
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(NewAttacksDeterminismTest, TwoRunsAreBitIdentical) {
  const struct {
    const char* attack;
    json::Value p;
  } cases[] = {
      {"eclipse", params({{"victim", 0},
                          {"keep", 1},
                          {"start_ms", 0},
                          {"duration_ms", 15'000},
                          {"mode", "delay"}})},
      {"adaptive-partition", params({{"subnets", 3},
                                     {"period_ms", 1'000},
                                     {"resolve_ms", 12'000},
                                     {"mode", "drop"}})},
      {"delay-schedule", params({{"type", "pbft/commit"},
                                 {"mode", "stall"},
                                 {"amount_ms", 1'000},
                                 {"duration_ms", 30'000}})},
      {"flood", params({{"copies", 2},
                        {"spread_ms", 0.5},
                        {"start_ms", 0},
                        {"duration_ms", 8'000}})},
      {"pbft-late-equivocation", params({{"view", 1}, {"strike_ms", 2'000}})},
  };
  for (const auto& c : cases) {
    SimConfig cfg = base_config("pbft", 7);
    cfg.attack = c.attack;
    cfg.attack_params = c.p;
    cfg.record_trace = true;
    const RunResult a = run_simulation(cfg);
    const RunResult b = run_simulation(cfg);
    EXPECT_EQ(a.termination_time, b.termination_time) << c.attack;
    EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint) << c.attack;
    EXPECT_EQ(a.trace_records, b.trace_records) << c.attack;
  }
}

TEST(AttackerActivityTest, PassiveRunsKeepAllCountersZero) {
  const RunResult result = run_simulation(base_config("pbft"));
  EXPECT_EQ(result.attacker_dropped, 0u);
  EXPECT_EQ(result.attacker_delayed, 0u);
  EXPECT_EQ(result.attacker_modified, 0u);
  EXPECT_EQ(result.attacker_duplicated, 0u);
  // ... and attack-free exports carry no attacker_activity key, keeping
  // them byte-identical to previous releases.
  const json::Value doc = result_to_json(result);
  EXPECT_EQ(doc.as_object().find("attacker_activity"), nullptr);
}

TEST(AttackerActivityTest, CountersAreExportedWhenNonzero) {
  SimConfig cfg = base_config("pbft");
  cfg.attack = "flood";
  cfg.attack_params = params({{"copies", 2},
                              {"spread_ms", 1},
                              {"start_ms", 0},
                              {"duration_ms", 5'000}});
  const RunResult result = run_simulation(cfg);
  const json::Value doc = result_to_json(result);
  const json::Value* atk = doc.as_object().find("attacker_activity");
  ASSERT_NE(atk, nullptr);
  EXPECT_EQ(atk->get_number("duplicated", 0.0),
            static_cast<double>(result.attacker_duplicated));
  EXPECT_GT(result.attacker_duplicated, 0u);
}

}  // namespace
}  // namespace bftsim

// Attack × fault composition: the equivocation attacks must survive being
// layered over crash/recover windows and link flaps — safety holds, the
// run still terminates, and the composed run stays deterministic (the
// attacker RNG stream and the fault stream are forked independently from
// the run seed, so neither layer perturbs the other's draws).
#include <gtest/gtest.h>

#include <string>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig composed_config(const std::string& protocol, const std::string& attack,
                          std::uint64_t seed) {
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.max_time_ms = 300'000;
  cfg.attack = attack;
  // One honest node crashes across the first voting wave and recovers; one
  // honest link flaps across the same span (the windows overlap the
  // equivocation fallout on purpose — later windows land in the dead air
  // while everyone waits out the view-change timer). Neither fault touches
  // the corrupted leader (node 0), so the attack itself plays out unchanged.
  cfg.faults.crashes = {CrashWindow{3, 100.0, 2'000.0}};
  cfg.faults.link_flaps = {LinkFlapWindow{1, 2, 100.0, 3'000.0}};
  cfg.record_trace = true;
  return cfg;
}

TEST(AttackFaultCompositionTest, PbftEquivocationUnderCrashAndFlap) {
  const SimConfig cfg = composed_config("pbft", "pbft-equivocation", 2);
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
  EXPECT_EQ(result.corrupted.size(), 1u);
  EXPECT_GT(result.messages_injected, 0u);
  EXPECT_GT(result.messages_dropped, 0u);  // the flap and crash both drop
}

TEST(AttackFaultCompositionTest, SyncHotStuffEquivocationUnderCrashAndFlap) {
  SimConfig cfg =
      composed_config("sync-hotstuff", "sync-hotstuff-equivocation", 2);
  cfg.delay.max_ms = cfg.lambda_ms;  // the sync model's λ bound
  const RunResult result = run_simulation(cfg);
  // The crash breaks the synchrony assumption the 2Δ commit rule rests on:
  // node 3 is down across the conflicting-proposal/echo exchange, misses
  // the conflict evidence, and commits one branch while the detecting
  // majority blames the leader and commits the other — an agreement
  // violation the sync model predicts once message loss enters, observed
  // deterministically here (the simulator's job is to expose it, not to
  // paper over it). Under partial synchrony (the PBFT test above) the same
  // fault load leaves safety intact.
  EXPECT_FALSE(result.decisions.empty());
  EXPECT_FALSE(result.decisions_consistent());
  EXPECT_EQ(result.corrupted.size(), 1u);
  EXPECT_GT(result.messages_injected, 0u);
}

TEST(AttackFaultCompositionTest, ComposedRunsAreBitIdentical) {
  for (const char* protocol : {"pbft", "sync-hotstuff"}) {
    SimConfig cfg = composed_config(
        protocol, std::string(protocol) == "pbft" ? "pbft-equivocation"
                                                  : "sync-hotstuff-equivocation",
        5);
    if (std::string(protocol) == "sync-hotstuff") {
      cfg.delay.max_ms = cfg.lambda_ms;
    }
    const RunResult a = run_simulation(cfg);
    const RunResult b = run_simulation(cfg);
    EXPECT_EQ(a.termination_time, b.termination_time) << protocol;
    EXPECT_EQ(a.trace_fingerprint, b.trace_fingerprint) << protocol;
    EXPECT_EQ(a.trace_records, b.trace_records) << protocol;
    EXPECT_EQ(a.messages_dropped, b.messages_dropped) << protocol;
    EXPECT_EQ(a.messages_injected, b.messages_injected) << protocol;
  }
}

TEST(AttackFaultCompositionTest, FaultLayerChangesTheAttackedOutcome) {
  // Sanity that the composition actually composes: the faulted run differs
  // from the fault-free attacked run (same seed), i.e. the fault layer was
  // not silently disabled by the attack path.
  SimConfig with_faults = composed_config("pbft", "pbft-equivocation", 7);
  SimConfig no_faults = with_faults;
  no_faults.faults = FaultConfig{};
  const RunResult a = run_simulation(with_faults);
  const RunResult b = run_simulation(no_faults);
  EXPECT_NE(a.trace_fingerprint, b.trace_fingerprint);
}

}  // namespace
}  // namespace bftsim

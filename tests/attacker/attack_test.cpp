#include "attacker/attacks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "attacker/registry.hpp"
#include "protocols/pbft/pbft.hpp"
#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig base_config(const std::string& protocol, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.max_time_ms = 300'000;
  return cfg;
}

json::Value partition_params(double resolve_ms, const std::string& mode,
                             int subnets = 2) {
  json::Object params;
  params["resolve_ms"] = resolve_ms;
  params["mode"] = mode;
  params["subnets"] = subnets;
  return json::Value{std::move(params)};
}

TEST(AttackRegistryTest, BuiltinsRegistered) {
  auto& reg = AttackRegistry::instance();
  EXPECT_TRUE(reg.contains("partition"));
  EXPECT_TRUE(reg.contains("add-static"));
  EXPECT_TRUE(reg.contains("add-adaptive"));
  EXPECT_FALSE(reg.contains("nope"));
  EXPECT_THROW((void)reg.make("nope", SimConfig{}), std::invalid_argument);
}

TEST(AttackRegistryTest, EmptyNameMeansNoAttack) {
  SimConfig cfg;
  cfg.attack = "";
  EXPECT_NE(dynamic_cast<NullAttacker*>(make_attacker(cfg).get()), nullptr);
  cfg.attack = "none";
  EXPECT_NE(dynamic_cast<NullAttacker*>(make_attacker(cfg).get()), nullptr);
}

TEST(PartitionAttackTest, DropModeBlocksCrossSubnetTraffic) {
  SimConfig cfg = base_config("pbft");
  cfg.attack = "partition";
  cfg.attack_params = partition_params(20'000, "drop");
  cfg.record_trace = true;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  // No message may cross subnets (id parity) before the resolve time.
  for (const TraceRecord& rec : result.trace.records()) {
    if (rec.kind != TraceKind::kDeliver || rec.a == rec.b) continue;
    if (rec.at < from_ms(20'000)) {
      EXPECT_EQ(rec.a % 2, rec.b % 2)
          << "cross-partition delivery at " << to_ms(rec.at) << "ms";
    }
  }
  EXPECT_GT(result.messages_dropped, 0u);
  EXPECT_GT(result.latency_ms(), 20'000);
}

TEST(PartitionAttackTest, DelayModeReleasesHeldMessagesAtResolve) {
  SimConfig cfg = base_config("pbft");
  cfg.attack = "partition";
  cfg.attack_params = partition_params(10'000, "delay");
  cfg.record_trace = true;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  std::size_t held = 0;
  for (const TraceRecord& rec : result.trace.records()) {
    if (rec.kind != TraceKind::kDeliver || rec.a == rec.b) continue;
    if (rec.a % 2 != rec.b % 2) {
      EXPECT_GE(rec.at, from_ms(10'000));
      ++held;
    }
  }
  EXPECT_GT(held, 0u);  // held messages were eventually delivered
}

TEST(PartitionAttackTest, NoQuorumDecidesDuringPartition) {
  // Safety under partition: no decision can happen before resolution
  // because neither half has a quorum.
  SimConfig cfg = base_config("librabft");
  cfg.attack = "partition";
  cfg.attack_params = partition_params(15'000, "drop");
  cfg.decisions = 10;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  for (const Decision& d : result.decisions) EXPECT_GE(d.at, from_ms(15'000));
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(PartitionAttackTest, FourWayPartition) {
  SimConfig cfg = base_config("pbft", 3);
  cfg.attack = "partition";
  cfg.attack_params = partition_params(8'000, "drop", 4);
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_GT(result.latency_ms(), 8'000);
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(PartitionAttackTest, MessageDrivenPacemakerRecoversFasterThanNaive) {
  // The Fig. 6 contrast: after the partition heals, LibraBFT re-syncs with
  // timeout certificates within seconds, HotStuff+NS must wait out its
  // accumulated exponential back-off.
  double libra_recovery = 0.0;
  double hotstuff_recovery = 0.0;
  for (const char* protocol : {"librabft", "hotstuff-ns"}) {
    SimConfig cfg = base_config(protocol, 2);
    cfg.attack = "partition";
    cfg.attack_params = partition_params(33'000, "drop");
    cfg.decisions = 1;
    const RunResult result = run_simulation(cfg);
    ASSERT_TRUE(result.terminated) << protocol;
    const double recovery = result.latency_ms() - 33'000;
    if (std::string(protocol) == "librabft") {
      libra_recovery = recovery;
    } else {
      hotstuff_recovery = recovery;
    }
  }
  EXPECT_LT(libra_recovery, hotstuff_recovery);
}

TEST(AddStaticAttackTest, CorruptsExactlyTheFirstLeadersForV1) {
  SimConfig cfg = base_config("addv1");
  cfg.attack = "add-static";
  const RunResult result = run_simulation(cfg);
  ASSERT_EQ(result.corrupted.size(), 7u);  // f = (16-1)/2
  for (NodeId i = 0; i < 7; ++i) {
    EXPECT_NE(std::find(result.corrupted.begin(), result.corrupted.end(), i),
              result.corrupted.end());
  }
}

TEST(AddStaticAttackTest, PicksRandomTargetsForVrfVariants) {
  SimConfig cfg = base_config("addv2", 5);
  cfg.attack = "add-static";
  const RunResult a = run_simulation(cfg);
  cfg.seed = 6;
  const RunResult b = run_simulation(cfg);
  EXPECT_EQ(a.corrupted.size(), 7u);
  EXPECT_NE(a.corrupted, b.corrupted);  // seed-dependent target choice
}

TEST(AddAdaptiveAttackTest, CorruptsRevealedLeadersOverTime) {
  SimConfig cfg = base_config("addv2");
  cfg.attack = "add-adaptive";
  cfg.record_trace = true;
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  // Adaptive: corruptions happen mid-execution, not at time zero.
  bool corruption_after_start = false;
  for (const TraceRecord& rec : result.trace.records()) {
    if (rec.kind == TraceKind::kCorrupt && rec.at > 0) corruption_after_start = true;
  }
  EXPECT_TRUE(corruption_after_start);
}

TEST(EquivocationAttackTest, PbftSafetyHolds) {
  SimConfig cfg = base_config("pbft", 2);
  cfg.attack = "pbft-equivocation";
  const RunResult attacked = run_simulation(cfg);
  ASSERT_TRUE(attacked.terminated);
  EXPECT_TRUE(attacked.decisions_consistent());
  EXPECT_EQ(attacked.corrupted.size(), 1u);
  EXPECT_GT(attacked.messages_injected, 0u);
  // Neither equivocating value gathers 2f+1 prepares, so liveness costs a
  // view change.
  const RunResult clean = run_simulation(base_config("pbft", 2));
  EXPECT_GT(attacked.latency_ms(), clean.latency_ms() + 3000);
}

TEST(EquivocationAttackTest, InjectionsAppearInTheTrace) {
  SimConfig cfg = base_config("pbft", 3);
  cfg.attack = "pbft-equivocation";
  cfg.record_trace = true;
  const RunResult result = run_simulation(cfg);
  std::size_t injected_sends = 0;
  for (const TraceRecord& rec : result.trace.records()) {
    if (rec.kind == TraceKind::kSend && rec.type == "pbft/pre-prepare" &&
        rec.a == 0) {
      ++injected_sends;
    }
  }
  EXPECT_GE(injected_sends, 15u);  // one forged proposal per honest node
}

/// An attacker that forges messages for an HONEST node: sign_as must yield
/// invalid signatures and honest receivers must discard the forgeries.
class HonestKeyForger final : public Attacker {
 public:
  void on_start(AttackerContext& ctx) override {
    // Node 1 is honest (never corrupted); try to impersonate it anyway.
    const Value value = hash_words({0xBADULL});
    for (NodeId dst = 0; dst < ctx.n(); ++dst) {
      if (dst == 1) continue;
      const Signature sig =
          ctx.sign_as(1, hash_words({0x5050ULL, 0ULL, 0ULL, value}));
      Message msg;
      msg.src = 1;
      msg.dst = dst;
      msg.payload = make_payload<pbft::PrePrepare>(0, 0, value, sig);
      ctx.inject(std::move(msg), from_ms(0.5));
    }
  }
  Disposition attack(MessageInFlight&, AttackerContext&) override {
    return Disposition::kDeliver;
  }
};

TEST(SignAsTest, HonestKeysAreUnforgeable) {
  static const bool registered = [] {
    AttackRegistry::instance().add("test-honest-forger", [](const SimConfig&) {
      return std::make_unique<HonestKeyForger>();
    });
    return true;
  }();
  (void)registered;

  SimConfig cfg = base_config("pbft", 4);
  cfg.attack = "test-honest-forger";
  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  // The forged proposals are rejected: nothing changes vs. the clean run
  // (node 1 is not even the leader, but a successful forgery would at
  // minimum desynchronize instance state).
  const RunResult clean = run_simulation(base_config("pbft", 4));
  EXPECT_EQ(result.termination_time, clean.termination_time);
  EXPECT_TRUE(result.decisions_consistent());
  EXPECT_TRUE(result.corrupted.empty());
}

}  // namespace
}  // namespace bftsim

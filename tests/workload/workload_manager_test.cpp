// WorkloadManager unit tests, driven directly (no simulation): arrival
// stream determinism off the dedicated RNG, open-loop materialization,
// batch formation (max_batch cap, max_wait_ms holdback), closed-loop
// windows and resubmission, the conservation identity, and the bookkeeping
// for duplicate / unmatched decides.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "workload/workload_manager.hpp"
#include "workload/workload_spec.hpp"

namespace bftsim {
namespace {

WorkloadSpec open_spec(double rate_rps, std::uint32_t max_batch = 256) {
  WorkloadSpec spec;
  spec.rate_rps = rate_rps;
  spec.max_batch = max_batch;
  return spec;
}

WorkloadSpec closed_spec(std::uint64_t clients, std::uint32_t window,
                         double think_ms = 0.0) {
  WorkloadSpec spec;
  spec.mode = WorkloadSpec::Mode::kClosed;
  spec.clients = clients;
  spec.window = window;
  spec.think_ms = think_ms;
  return spec;
}

constexpr Value kFresh = 0x0123456789abcdefULL;

// ---------------------------------------------------------------------------
// Arrival streams
// ---------------------------------------------------------------------------

TEST(WorkloadManagerTest, PoissonArrivalStreamIsDeterministic) {
  WorkloadManager a(open_spec(500.0), 4, Rng(42));
  WorkloadManager b(open_spec(500.0), 4, Rng(42));
  for (int step = 1; step <= 8; ++step) {
    const Time now = from_ms(100.0 * step);
    for (NodeId node = 0; node < 4; ++node) {
      const ProposalBatch pa = a.on_propose(node, step, kFresh, now);
      const ProposalBatch pb = b.on_propose(node, step, kFresh, now);
      EXPECT_EQ(pa.value, pb.value);
      EXPECT_EQ(pa.requests, pb.requests);
      EXPECT_EQ(pa.body_bytes, pb.body_bytes);
    }
  }
}

TEST(WorkloadManagerTest, DifferentSeedsDiverge) {
  WorkloadManager a(open_spec(500.0), 4, Rng(1));
  WorkloadManager b(open_spec(500.0), 4, Rng(2));
  std::uint64_t taken_a = 0;
  std::uint64_t taken_b = 0;
  for (NodeId node = 0; node < 4; ++node) {
    taken_a += a.on_propose(node, 1, kFresh, from_ms(500)).requests;
    taken_b += b.on_propose(node, 1, kFresh, from_ms(500)).requests;
  }
  // Same expected count (~250 per manager), essentially never equal across
  // all four Poisson streams.
  EXPECT_NE(taken_a, taken_b);
}

TEST(WorkloadManagerTest, NoArrivalsAtTimeZero) {
  WorkloadManager m(open_spec(1000.0), 2, Rng(7));
  const ProposalBatch batch = m.on_propose(0, 1, kFresh, 0);
  // Nothing ready: the protocol's own fresh value is passed through.
  EXPECT_EQ(batch.value, kFresh);
  EXPECT_EQ(batch.requests, 0u);
  EXPECT_EQ(batch.body_bytes, 0u);
  const WorkloadStats stats = m.finalize(0);
  EXPECT_EQ(stats.empty_proposals, 1u);
  EXPECT_EQ(stats.batches, 0u);
}

TEST(WorkloadManagerTest, FixedArrivalsAreRegular) {
  // n=1 at 1000 rps fixed: exactly one arrival per millisecond.
  WorkloadSpec spec = open_spec(1000.0);
  spec.arrival = WorkloadSpec::Arrival::kFixed;
  WorkloadManager m(spec, 1, Rng(3));
  const ProposalBatch batch = m.on_propose(0, 1, kFresh, from_ms(10));
  EXPECT_EQ(batch.requests, 10u);
  EXPECT_NE(batch.value, kFresh);  // a real batch gets a minted digest
}

// ---------------------------------------------------------------------------
// Batch formation
// ---------------------------------------------------------------------------

TEST(WorkloadManagerTest, BatchCapsAtMaxBatch) {
  WorkloadSpec spec = open_spec(1000.0, /*max_batch=*/5);
  spec.arrival = WorkloadSpec::Arrival::kFixed;
  spec.request_bytes = 100;
  WorkloadManager m(spec, 1, Rng(3));
  const ProposalBatch first = m.on_propose(0, 1, kFresh, from_ms(12));
  EXPECT_EQ(first.requests, 5u);
  EXPECT_EQ(first.body_bytes, 500u);
  // The remainder stays queued for the next proposal.
  const ProposalBatch second = m.on_propose(0, 2, kFresh, from_ms(12));
  EXPECT_EQ(second.requests, 5u);
  const ProposalBatch third = m.on_propose(0, 3, kFresh, from_ms(12));
  EXPECT_EQ(third.requests, 2u);
}

TEST(WorkloadManagerTest, DistinctBatchesGetDistinctValues) {
  WorkloadSpec spec = open_spec(1000.0, 5);
  spec.arrival = WorkloadSpec::Arrival::kFixed;
  WorkloadManager m(spec, 1, Rng(3));
  const ProposalBatch first = m.on_propose(0, 1, kFresh, from_ms(12));
  const ProposalBatch second = m.on_propose(0, 1, kFresh, from_ms(12));
  EXPECT_NE(first.value, second.value);
}

TEST(WorkloadManagerTest, MaxWaitHoldsPartialBatches) {
  // One arrival per 100 ms; max_batch 8 with a 500 ms batching timeout.
  WorkloadSpec spec = open_spec(10.0, /*max_batch=*/8);
  spec.arrival = WorkloadSpec::Arrival::kFixed;
  spec.max_wait_ms = 500.0;
  WorkloadManager m(spec, 1, Rng(3));
  // Two arrivals exist (200 ms), oldest is younger than max_wait: hold.
  const ProposalBatch early = m.on_propose(0, 1, kFresh, from_ms(250));
  EXPECT_EQ(early.requests, 0u);
  EXPECT_EQ(early.value, kFresh);
  // Oldest arrival (100 ms) has now waited 550 ms: the partial ships.
  const ProposalBatch late = m.on_propose(0, 2, kFresh, from_ms(650));
  EXPECT_GT(late.requests, 0u);
}

TEST(WorkloadManagerTest, FullBatchShipsDespiteMaxWait) {
  // 1 arrival/ms, max_batch 4: a full batch never waits for the timeout.
  WorkloadSpec spec = open_spec(1000.0, /*max_batch=*/4);
  spec.arrival = WorkloadSpec::Arrival::kFixed;
  spec.max_wait_ms = 10'000.0;
  WorkloadManager m(spec, 1, Rng(3));
  const ProposalBatch batch = m.on_propose(0, 1, kFresh, from_ms(6));
  EXPECT_EQ(batch.requests, 4u);
}

// ---------------------------------------------------------------------------
// Closed loop
// ---------------------------------------------------------------------------

TEST(WorkloadManagerTest, ClosedLoopSubmitsClientsTimesWindow) {
  WorkloadManager m(closed_spec(100, 3), 4, Rng(9));
  EXPECT_TRUE(m.serial_only());
  const WorkloadStats stats = m.finalize(from_ms(1));
  EXPECT_EQ(stats.submitted, 300u);
  EXPECT_EQ(stats.pending_end, 300u);
  EXPECT_EQ(stats.max_in_flight, 300u);
}

TEST(WorkloadManagerTest, ClosedLoopScalesToMillionsOfClients) {
  // Run-length-encoded pending groups: 10M clients cost O(nodes), so this
  // constructs and finalizes instantly.
  WorkloadManager m(closed_spec(10'000'000, 1), 4, Rng(9));
  const WorkloadStats stats = m.finalize(0);
  EXPECT_EQ(stats.submitted, 10'000'000u);
  EXPECT_EQ(stats.max_in_flight, 10'000'000u);
}

TEST(WorkloadManagerTest, ClosedLoopResubmitsAfterDecide) {
  // 8 clients on 1 node, window 1, no think time: deciding the batch puts
  // all 8 straight back into the pending queue.
  WorkloadManager m(closed_spec(8, 1), 1, Rng(9));
  const ProposalBatch batch = m.on_propose(0, 1, kFresh, from_ms(5));
  ASSERT_EQ(batch.requests, 8u);
  m.on_decide(batch.value, from_ms(20));
  const WorkloadStats stats = m.finalize(from_ms(20));
  EXPECT_EQ(stats.decided, 8u);
  EXPECT_EQ(stats.submitted, 16u);  // initial window + one resubmission
  EXPECT_EQ(stats.pending_end, 8u);
  EXPECT_EQ(stats.max_in_flight, 8u);  // in-flight never exceeds the window
}

TEST(WorkloadManagerTest, OpenLoopReportsNoInFlightBound) {
  WorkloadManager m(open_spec(100.0), 2, Rng(5));
  const WorkloadStats stats = m.finalize(from_ms(100));
  EXPECT_EQ(stats.max_in_flight, 0u);
}

// ---------------------------------------------------------------------------
// Decide bookkeeping and conservation
// ---------------------------------------------------------------------------

TEST(WorkloadManagerTest, DuplicateDecideCountedOnce) {
  WorkloadManager m(closed_spec(4, 1), 1, Rng(9));
  const ProposalBatch batch = m.on_propose(0, 1, kFresh, from_ms(5));
  m.on_decide(batch.value, from_ms(10));
  m.on_decide(batch.value, from_ms(11));
  const WorkloadStats stats = m.finalize(from_ms(11));
  EXPECT_EQ(stats.decided, 4u);  // requests counted once
  EXPECT_EQ(stats.duplicate_decides, 1u);
}

TEST(WorkloadManagerTest, UnmatchedDecideCountsAsEmptyDecision) {
  WorkloadManager m(open_spec(100.0), 2, Rng(5));
  m.on_decide(0xdeadbeefULL, from_ms(10));
  const WorkloadStats stats = m.finalize(from_ms(10));
  EXPECT_EQ(stats.empty_decisions, 1u);
  EXPECT_EQ(stats.decided, 0u);
}

TEST(WorkloadManagerTest, ConservationHoldsUnderMixedTraffic) {
  WorkloadSpec spec = open_spec(2000.0, /*max_batch=*/16);
  WorkloadManager m(spec, 4, Rng(11));
  std::uint64_t decided_batches = 0;
  for (int step = 1; step <= 10; ++step) {
    const Time now = from_ms(50.0 * step);
    for (NodeId node = 0; node < 4; ++node) {
      const ProposalBatch batch = m.on_propose(node, step, kFresh, now);
      // Decide roughly half the formed batches; the rest stay orphaned.
      if (batch.requests > 0 && (node + step) % 2 == 0) {
        m.on_decide(batch.value, now + from_ms(25));
        ++decided_batches;
      }
    }
  }
  ASSERT_GT(decided_batches, 0u);
  const WorkloadStats stats = m.finalize(from_ms(600));
  EXPECT_GT(stats.decided, 0u);
  EXPECT_GT(stats.batched_undecided, 0u);
  EXPECT_EQ(stats.submitted,
            stats.decided + stats.pending_end + stats.batched_undecided);
}

TEST(WorkloadManagerTest, LatencyReportIsOrderedAndPositive) {
  WorkloadSpec spec = open_spec(1000.0, 8);
  spec.arrival = WorkloadSpec::Arrival::kFixed;
  WorkloadManager m(spec, 1, Rng(13));
  for (int step = 1; step <= 6; ++step) {
    const Time now = from_ms(20.0 * step);
    const ProposalBatch batch = m.on_propose(0, step, kFresh, now);
    if (batch.requests > 0) m.on_decide(batch.value, now + from_ms(30));
  }
  const WorkloadStats stats = m.finalize(from_ms(200));
  ASSERT_GT(stats.decided, 0u);
  EXPECT_GT(stats.latency_min_ms, 0.0);
  EXPECT_LE(stats.latency_min_ms, stats.latency_p50_ms);
  EXPECT_LE(stats.latency_p50_ms, stats.latency_p99_ms);
  EXPECT_LE(stats.latency_p99_ms, stats.latency_p999_ms);
  EXPECT_LE(stats.latency_p999_ms, stats.latency_max_ms);
  EXPECT_GT(stats.requests_per_sec, 0.0);
}

TEST(WorkloadManagerTest, FinalizeCountsArrivalsUpToEnd) {
  // Conservation must include arrivals the run never proposed: finalize
  // advances every stream to `end` before counting pending.
  WorkloadSpec spec = open_spec(1000.0);
  spec.arrival = WorkloadSpec::Arrival::kFixed;
  WorkloadManager m(spec, 1, Rng(17));
  const WorkloadStats stats = m.finalize(from_ms(50));
  EXPECT_EQ(stats.submitted, 50u);
  EXPECT_EQ(stats.pending_end, 50u);
}

}  // namespace
}  // namespace bftsim

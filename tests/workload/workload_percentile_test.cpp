// Pins the percentile arithmetic behind the request-latency report
// (WorkloadStats latency_p50/p99/p999): percentile_sorted uses the linear
// interpolation rule pos = q * (n - 1), so exact ranks, single samples and
// tied samples all have one defensible answer. Any change to the rule moves
// every recorded golden; these tests name it directly.
#include <gtest/gtest.h>

#include <vector>

#include "core/stats.hpp"

namespace bftsim {
namespace {

TEST(WorkloadPercentileTest, ExactRanksOnUniformGrid) {
  // 0..100: pos = q * 100 lands on integer ranks for round percentiles.
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.90), 90.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 100.0);
}

TEST(WorkloadPercentileTest, InterpolatesBetweenRanks) {
  // Two samples: pos = q, linear between the endpoints.
  const std::vector<double> v{10.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.99), 19.9);
  // Four samples: p999 sits 0.997 of the way from rank 2 to rank 3.
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(w, 0.999), 3.0 + 0.997);
}

TEST(WorkloadPercentileTest, SingleSampleIsEveryPercentile) {
  const std::vector<double> v{7.25};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 7.25);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.50), 7.25);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.99), 7.25);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.999), 7.25);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 7.25);
}

TEST(WorkloadPercentileTest, TiesCollapseToTheTiedValue) {
  // Interpolating between equal neighbors yields the tied value exactly.
  const std::vector<double> v{5.0, 5.0, 5.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.70), 5.0);
  // p99: pos = 3.96, between the last 5.0 and the 9.0.
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.99), 5.0 + 0.96 * 4.0);
}

TEST(WorkloadPercentileTest, PercentilesAreMonotoneInQ) {
  const std::vector<double> v{0.5, 1.0, 2.5, 2.5, 3.0, 10.0, 50.0, 51.0};
  double prev = percentile_sorted(v, 0.0);
  for (const double q : {0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double cur = percentile_sorted(v, q);
    EXPECT_LE(prev, cur) << "q=" << q;
    prev = cur;
  }
}

TEST(WorkloadPercentileTest, TailPercentilesOrderedOnSkewedSample) {
  // The shape the workload report relies on: p50 <= p99 <= p999 always.
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) v.push_back(i < 1990 ? 1.0 : 100.0 + i);
  const double p50 = percentile_sorted(v, 0.50);
  const double p99 = percentile_sorted(v, 0.99);
  const double p999 = percentile_sorted(v, 0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_DOUBLE_EQ(p50, 1.0);
  EXPECT_GT(p999, p99);
}

}  // namespace
}  // namespace bftsim

// End-to-end client workload tests: the conservation property across every
// registered protocol, the closed-loop in-flight bound and serial
// fallback, byte-identical determinism across job counts and windowed lane
// counts, composition with the fault layer and global attacks, the JSON
// export gating, and the checked-in workload golden replay
// (tests/data/engine_goldens.json, "workload_points" /
// "workload_single_points" — the contract the CI workload-matrix job
// enforces). See docs/WORKLOADS.md.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/json.hpp"
#include "protocols/registry.hpp"
#include "runner/export.hpp"
#include "runner/runner.hpp"
#include "sim/simulation.hpp"

#ifndef BFTSIM_REPO_ROOT
#error "BFTSIM_REPO_ROOT must point at the repository checkout"
#endif

namespace bftsim {
namespace {

const std::string kGoldensPath =
    std::string(BFTSIM_REPO_ROOT) + "/tests/data/engine_goldens.json";

/// Open-loop Poisson workload on top of the standard experiment config.
SimConfig open_loop_config(const std::string& protocol, std::uint32_t n,
                           double rate_rps) {
  SimConfig cfg =
      experiment_config(protocol, n, 1000, DelaySpec::normal(250, 50));
  cfg.decisions = 10;  // several fresh proposals so batching engages
  cfg.max_time_ms = 600'000;
  cfg.workload.rate_rps = rate_rps;
  cfg.workload.max_batch = 16;
  return cfg;
}

void expect_conservation(const WorkloadStats& wl) {
  EXPECT_TRUE(wl.enabled);
  EXPECT_EQ(wl.submitted, wl.decided + wl.pending_end + wl.batched_undecided)
      << "submitted=" << wl.submitted << " decided=" << wl.decided
      << " pending_end=" << wl.pending_end
      << " batched_undecided=" << wl.batched_undecided;
}

// ---------------------------------------------------------------------------
// Conservation across every registered protocol
// ---------------------------------------------------------------------------

class WorkloadConservation : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadConservation, EveryRequestIsAccountedForExactlyOnce) {
  const SimConfig cfg = open_loop_config(GetParam(), 8, 500.0);
  const RunResult r = run_simulation(cfg);
  expect_conservation(r.workload);
  EXPECT_TRUE(r.decisions_consistent());
  // Whether any request can decide depends on protocol structure, not the
  // workload: asyncba decides coin bits (never proposer-minted batches),
  // and the one-shot protocols that mint their only proposal at t=0
  // (addv1/addv3 round 0, algorand period 0) propose before the first
  // open-loop arrival exists. addv2's elect round delays its proposal by
  // one λ, so it does batch. Pipelined protocols batch on every sequence.
  const std::string protocol = GetParam();
  const bool batches_decide = protocol != "asyncba" && protocol != "addv1" &&
                              protocol != "addv3" && protocol != "algorand";
  if (batches_decide) {
    EXPECT_GT(r.workload.decided, 0u) << "no requests decided";
    EXPECT_GT(r.workload.requests_per_sec, 0.0);
  } else {
    EXPECT_EQ(r.workload.decided, 0u);
    EXPECT_GT(r.workload.empty_decisions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, WorkloadConservation,
    ::testing::ValuesIn(ProtocolRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Closed loop
// ---------------------------------------------------------------------------

TEST(WorkloadClosedLoopTest, InFlightNeverExceedsClientsTimesWindow) {
  SimConfig cfg =
      experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
  cfg.decisions = 10;
  cfg.max_time_ms = 600'000;
  cfg.workload.mode = WorkloadSpec::Mode::kClosed;
  cfg.workload.clients = 200;
  cfg.workload.window = 3;
  cfg.workload.think_ms = 20.0;
  const RunResult r = run_simulation(cfg);
  expect_conservation(r.workload);
  EXPECT_GT(r.workload.decided, 0u);
  EXPECT_GT(r.workload.max_in_flight, 0u);
  EXPECT_LE(r.workload.max_in_flight, 200u * 3u);
}

TEST(WorkloadClosedLoopTest, FallsBackToSerialEngineWithWarning) {
  SimConfig cfg =
      experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
  cfg.decisions = 5;
  cfg.max_time_ms = 600'000;
  cfg.engine.intra_jobs = 4;  // would select the windowed driver
  cfg.workload.mode = WorkloadSpec::Mode::kClosed;
  cfg.workload.clients = 50;
  cfg.workload.window = 1;
  const RunResult r = run_simulation(cfg);
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_EQ(r.warnings[0].code, "engine-serial-fallback");
  EXPECT_NE(r.warnings[0].detail.find("closed-loop"), std::string::npos);
  expect_conservation(r.workload);
}

TEST(WorkloadClosedLoopTest, OpenLoopOnWindowedEngineCarriesNoWarning) {
  SimConfig cfg = open_loop_config("pbft", 8, 300.0);
  cfg.engine.intra_jobs = 2;
  const RunResult r = run_simulation(cfg);
  EXPECT_TRUE(r.warnings.empty());
  expect_conservation(r.workload);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

/// Canonical report text with the one legitimately nondeterministic field
/// (wall clock) zeroed — the same normalization `equivalent()` applies.
std::string deterministic_report(const Aggregate& agg) {
  json::Value doc = aggregate_to_json(agg);
  doc.as_object()["wall_seconds_total"] = 0.0;
  return doc.dump(2);
}

TEST(WorkloadDeterminismTest, ReportsAreByteIdenticalAcrossJobCounts) {
  // The acceptance contract for the CI workload-matrix job: request-level
  // aggregates must not depend on the worker count.
  const SimConfig cfg = open_loop_config("hotstuff-ns", 8, 400.0);
  const Aggregate serial = run_repeated(cfg, 4);
  const Aggregate jobs4 = run_repeated_parallel(cfg, 4, 4);
  EXPECT_TRUE(equivalent(serial, jobs4));
  EXPECT_EQ(deterministic_report(serial), deterministic_report(jobs4));
  EXPECT_GT(serial.workload_decided, 0u);
  EXPECT_EQ(serial.workload_runs, 4u);
}

TEST(WorkloadDeterminismTest, ClosedLoopAggregatesMatchAcrossJobCounts) {
  SimConfig cfg =
      experiment_config("tendermint", 8, 1000, DelaySpec::normal(250, 50));
  cfg.max_time_ms = 600'000;
  cfg.workload.mode = WorkloadSpec::Mode::kClosed;
  cfg.workload.clients = 100;
  cfg.workload.window = 2;
  cfg.workload.think_ms = 50.0;
  const Aggregate serial = run_repeated(cfg, 3);
  const Aggregate jobs3 = run_repeated_parallel(cfg, 3, 3);
  EXPECT_TRUE(equivalent(serial, jobs3));
  EXPECT_EQ(deterministic_report(serial), deterministic_report(jobs3));
}

/// Workload stats serialized for exact comparison across engines.
std::string workload_report(const RunResult& r) {
  return workload_to_json(r.workload).dump(2);
}

TEST(WorkloadDeterminismTest, OpenLoopIsLaneCountInvariant) {
  // Open-loop workloads run on the windowed-parallel driver; the merge
  // barrier replays decides in serial order, so the full request-level
  // record must be bit-identical at every lane count.
  SimConfig cfg = open_loop_config("hotstuff-ns", 8, 400.0);
  cfg.engine.rng = EngineConfig::RngMode::kPerNode;
  cfg.engine.intra_jobs = 1;
  const RunResult serial = run_simulation(cfg);
  ASSERT_GT(serial.workload.decided, 0u);
  for (const std::uint32_t lanes : {2u, 3u, 8u}) {
    SCOPED_TRACE("intra_jobs=" + std::to_string(lanes));
    SimConfig windowed = cfg;
    windowed.engine.intra_jobs = lanes;
    const RunResult r = run_simulation(windowed);
    EXPECT_EQ(r.termination_time, serial.termination_time);
    EXPECT_EQ(r.messages_sent, serial.messages_sent);
    EXPECT_EQ(workload_report(r), workload_report(serial));
  }
}

TEST(WorkloadDeterminismTest, RerunIsBitIdentical) {
  const SimConfig cfg = open_loop_config("pbft", 8, 500.0);
  const RunResult a = run_simulation(cfg);
  const RunResult b = run_simulation(cfg);
  EXPECT_EQ(workload_report(a), workload_report(b));
  EXPECT_EQ(a.termination_time, b.termination_time);
}

TEST(WorkloadDeterminismTest, WorkloadOffRunsMatchWorkloadFreeBaseline) {
  // enabled() gates the "wl" RNG fork: a default-constructed workload block
  // must leave the run untouched relative to a config that never mentions
  // workload at all (the golden bit-identity contract).
  const SimConfig cfg =
      experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
  SimConfig with_block = cfg;
  with_block.workload = WorkloadSpec{};
  const RunResult a = run_simulation(cfg);
  const RunResult b = run_simulation(with_block);
  EXPECT_FALSE(a.workload.enabled);
  EXPECT_EQ(a.termination_time, b.termination_time);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
}

// ---------------------------------------------------------------------------
// Composition: workload x faults, workload x attacks
// ---------------------------------------------------------------------------

TEST(WorkloadCompositionTest, SurvivesCrashRecoverFaults) {
  SimConfig cfg = open_loop_config("pbft", 8, 400.0);
  cfg.faults.crashes.push_back({2, 300.0, 2000.0});
  const RunResult r = run_simulation(cfg);
  expect_conservation(r.workload);
  EXPECT_TRUE(r.decisions_consistent());
}

TEST(WorkloadCompositionTest, SurvivesPartitionAttackViaSerialFallback) {
  SimConfig cfg = open_loop_config("pbft", 8, 400.0);
  cfg.decisions = 1;
  cfg.attack = "partition";
  json::Object params;
  params["resolve_ms"] = 3000.0;
  params["mode"] = std::string("drop");
  cfg.attack_params = json::Value{std::move(params)};
  cfg.engine.intra_jobs = 4;  // attack forces the serial fallback
  const RunResult r = run_simulation(cfg);
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_EQ(r.warnings[0].code, "engine-serial-fallback");
  expect_conservation(r.workload);
}

// ---------------------------------------------------------------------------
// Export gating
// ---------------------------------------------------------------------------

TEST(WorkloadExportTest, RunJsonCarriesWorkloadBlockOnlyWhenEnabled) {
  const SimConfig off =
      experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
  const json::Value off_doc = result_to_json(run_simulation(off));
  EXPECT_EQ(off_doc.as_object().find("workload"), nullptr);

  const SimConfig on = open_loop_config("pbft", 8, 500.0);
  const json::Value on_doc = result_to_json(run_simulation(on));
  const json::Value* wl = on_doc.as_object().find("workload");
  ASSERT_NE(wl, nullptr);
  const json::Object& o = wl->as_object();
  EXPECT_GT(o.at("submitted").as_int(), 0);
  EXPECT_GE(o.at("latency_p99_ms").as_number(),
            o.at("latency_p50_ms").as_number());
  EXPECT_GE(o.at("latency_p999_ms").as_number(),
            o.at("latency_p99_ms").as_number());
}

TEST(WorkloadExportTest, AggregateJsonCarriesWorkloadSummaries) {
  const SimConfig cfg = open_loop_config("pbft", 8, 500.0);
  const json::Value doc = aggregate_to_json(run_repeated(cfg, 2));
  const json::Value* wl = doc.as_object().find("workload");
  ASSERT_NE(wl, nullptr);
  EXPECT_EQ(wl->as_object().at("runs").as_int(), 2);
  EXPECT_EQ(wl->as_object()
                .at("requests_per_sec")
                .as_object()
                .at("count")
                .as_int(),
            2);

  const SimConfig off =
      experiment_config("pbft", 8, 1000, DelaySpec::normal(250, 50));
  const json::Value off_doc = aggregate_to_json(run_repeated(off, 2));
  EXPECT_EQ(off_doc.as_object().find("workload"), nullptr);
}

// ---------------------------------------------------------------------------
// Acceptance: pbft n=64
// ---------------------------------------------------------------------------

TEST(WorkloadAcceptanceTest, Pbft64ReportsThroughputAndOrderedPercentiles) {
  const SimConfig cfg = open_loop_config("pbft", 64, 2000.0);
  const RunResult r = run_simulation(cfg);
  ASSERT_TRUE(r.terminated);
  expect_conservation(r.workload);
  EXPECT_GT(r.workload.requests_per_sec, 0.0);
  EXPECT_LE(r.workload.latency_p50_ms, r.workload.latency_p99_ms);
  EXPECT_LE(r.workload.latency_p99_ms, r.workload.latency_p999_ms);
  // The JSON view the acceptance criterion names.
  const json::Value doc = result_to_json(r);
  const json::Object& wl = doc.as_object().at("workload").as_object();
  EXPECT_GT(wl.at("requests_per_sec").as_number(), 0.0);
}

// ---------------------------------------------------------------------------
// Golden replay
// ---------------------------------------------------------------------------

TEST(WorkloadGoldensTest, WorkloadPointsReplayBitIdentical) {
  const json::Value doc = json::parse_file(kGoldensPath);
  const json::Array& points = doc.as_object().at("workload_points").as_array();
  ASSERT_GE(points.size(), 4u);
  for (const json::Value& point : points) {
    const json::Object& o = point.as_object();
    SCOPED_TRACE(o.at("name").as_string());
    const SimConfig cfg = SimConfig::from_json(o.at("config"));
    EXPECT_TRUE(cfg.workload.enabled());
    const auto repeats = static_cast<std::size_t>(o.at("repeats").as_int());
    const Aggregate actual = run_repeated(cfg, repeats);
    json::Value want = o.at("aggregate");
    want.as_object()["wall_seconds_total"] = 0.0;
    EXPECT_EQ(deterministic_report(actual), want.dump(2));
  }
}

TEST(WorkloadGoldensTest, WorkloadSinglePointsReplayBitIdentical) {
  const json::Value doc = json::parse_file(kGoldensPath);
  const json::Array& points =
      doc.as_object().at("workload_single_points").as_array();
  ASSERT_GE(points.size(), 1u);
  for (const json::Value& point : points) {
    const json::Object& o = point.as_object();
    SCOPED_TRACE(o.at("name").as_string());
    const SimConfig cfg = SimConfig::from_json(o.at("config"));
    const RunResult r = run_simulation(cfg);
    const json::Object& want = o.at("result").as_object();
    EXPECT_EQ(r.terminated, want.at("terminated").as_bool());
    EXPECT_EQ(static_cast<std::int64_t>(r.termination_time),
              want.at("termination_time").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.events_processed),
              want.at("events_processed").as_int());
    EXPECT_EQ(static_cast<std::int64_t>(r.bytes_sent),
              want.at("bytes_sent").as_int());
    // The full request-level record, field for field.
    EXPECT_EQ(workload_to_json(r.workload).dump(2),
              want.at("workload").dump(2));
  }
}

}  // namespace
}  // namespace bftsim

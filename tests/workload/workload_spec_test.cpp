// $.workload configuration tests: strict path-aware parsing, the
// validation error battery (every message names the offending JSON path),
// round-trips through to_json, and the enabled() gating that keeps
// workload-free configs byte-identical to previous releases.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/config.hpp"
#include "core/json.hpp"
#include "workload/workload_spec.hpp"

namespace bftsim {
namespace {

// ---------------------------------------------------------------------------
// Defaults and enabling
// ---------------------------------------------------------------------------

TEST(WorkloadSpecTest, DefaultIsDisabled) {
  const WorkloadSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_TRUE(spec.open());
  EXPECT_FALSE(spec.closed());
}

TEST(WorkloadSpecTest, OpenLoopEnabledByPositiveRate) {
  WorkloadSpec spec;
  spec.rate_rps = 100.0;
  EXPECT_TRUE(spec.enabled());
}

TEST(WorkloadSpecTest, ClosedLoopEnabledByClients) {
  WorkloadSpec spec;
  spec.mode = WorkloadSpec::Mode::kClosed;
  EXPECT_FALSE(spec.enabled());
  spec.clients = 10;
  EXPECT_TRUE(spec.enabled());
  EXPECT_TRUE(spec.closed());
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

TEST(WorkloadSpecTest, ParsesOpenLoopBlock) {
  const WorkloadSpec spec = WorkloadSpec::from_json(json::parse(
      R"({"mode": "open", "arrival": "fixed", "rate_rps": 250.5,
          "request_bytes": 512, "max_batch": 64, "max_wait_ms": 10})"));
  EXPECT_TRUE(spec.open());
  EXPECT_EQ(spec.arrival, WorkloadSpec::Arrival::kFixed);
  EXPECT_DOUBLE_EQ(spec.rate_rps, 250.5);
  EXPECT_EQ(spec.request_bytes, 512u);
  EXPECT_EQ(spec.max_batch, 64u);
  EXPECT_DOUBLE_EQ(spec.max_wait_ms, 10.0);
}

TEST(WorkloadSpecTest, ParsesClosedLoopBlock) {
  const WorkloadSpec spec = WorkloadSpec::from_json(json::parse(
      R"({"mode": "closed", "clients": 1000000, "window": 4,
          "think_ms": 50})"));
  EXPECT_TRUE(spec.closed());
  EXPECT_TRUE(spec.enabled());
  EXPECT_EQ(spec.clients, 1'000'000u);
  EXPECT_EQ(spec.window, 4u);
  EXPECT_DOUBLE_EQ(spec.think_ms, 50.0);
}

TEST(WorkloadSpecTest, DefaultsFillUnsetKeys) {
  const WorkloadSpec spec =
      WorkloadSpec::from_json(json::parse(R"({"rate_rps": 10})"));
  EXPECT_EQ(spec.arrival, WorkloadSpec::Arrival::kPoisson);
  EXPECT_EQ(spec.request_bytes, 256u);
  EXPECT_EQ(spec.max_batch, 256u);
  EXPECT_DOUBLE_EQ(spec.max_wait_ms, 0.0);
}

// ---------------------------------------------------------------------------
// Round-trips
// ---------------------------------------------------------------------------

TEST(WorkloadSpecTest, OpenLoopRoundTripsThroughJson) {
  WorkloadSpec spec;
  spec.rate_rps = 123.25;
  spec.arrival = WorkloadSpec::Arrival::kFixed;
  spec.request_bytes = 100;
  spec.max_batch = 7;
  spec.max_wait_ms = 2.5;
  const WorkloadSpec back = WorkloadSpec::from_json(spec.to_json());
  EXPECT_EQ(back.to_json().dump(2), spec.to_json().dump(2));
  EXPECT_DOUBLE_EQ(back.rate_rps, 123.25);
  EXPECT_EQ(back.max_batch, 7u);
}

TEST(WorkloadSpecTest, ClosedLoopRoundTripsThroughJson) {
  WorkloadSpec spec;
  spec.mode = WorkloadSpec::Mode::kClosed;
  spec.clients = 5'000'000;
  spec.window = 2;
  spec.think_ms = 75.0;
  const WorkloadSpec back = WorkloadSpec::from_json(spec.to_json());
  EXPECT_EQ(back.to_json().dump(2), spec.to_json().dump(2));
  EXPECT_EQ(back.clients, 5'000'000u);
  EXPECT_EQ(back.window, 2u);
}

// ---------------------------------------------------------------------------
// Error battery: every rejection names the offending JSON path
// ---------------------------------------------------------------------------

/// Expects the strict parse of `text` to throw mentioning `needle`.
void expect_config_error(const std::string& text, const std::string& needle) {
  try {
    (void)WorkloadSpec::from_json(json::parse(text));
    FAIL() << "expected config error containing: " << needle;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(WorkloadSpecErrorTest, NegativeRateNamesPath) {
  expect_config_error(R"({"rate_rps": -1})", "$.workload.rate_rps");
}

TEST(WorkloadSpecErrorTest, ZeroMaxBatchNamesPath) {
  expect_config_error(R"({"rate_rps": 10, "max_batch": 0})",
                      "$.workload.max_batch");
}

TEST(WorkloadSpecErrorTest, UnknownKeyNamesPath) {
  expect_config_error(R"({"rate_rps": 10, "ratelimit": 5})",
                      "$.workload.ratelimit: unknown key");
}

TEST(WorkloadSpecErrorTest, UnknownModeRejected) {
  expect_config_error(R"({"mode": "burst"})", "$.workload.mode");
}

TEST(WorkloadSpecErrorTest, UnknownArrivalRejected) {
  expect_config_error(R"({"arrival": "pareto"})", "$.workload.arrival");
}

TEST(WorkloadSpecErrorTest, ClientsInOpenModeRejected) {
  expect_config_error(R"({"mode": "open", "clients": 5})",
                      "$.workload.clients");
}

TEST(WorkloadSpecErrorTest, RateInClosedModeRejected) {
  expect_config_error(R"({"mode": "closed", "clients": 5, "rate_rps": 10})",
                      "$.workload.rate_rps");
}

TEST(WorkloadSpecErrorTest, ZeroWindowRejected) {
  expect_config_error(R"({"mode": "closed", "clients": 5, "window": 0})",
                      "$.workload.window");
}

TEST(WorkloadSpecErrorTest, ZeroRequestBytesRejected) {
  expect_config_error(R"({"rate_rps": 10, "request_bytes": 0})",
                      "$.workload.request_bytes");
}

TEST(WorkloadSpecErrorTest, NegativeThinkRejected) {
  expect_config_error(R"({"mode": "closed", "clients": 5, "think_ms": -3})",
                      "$.workload.think_ms");
}

TEST(WorkloadSpecErrorTest, NegativeMaxWaitRejected) {
  expect_config_error(R"({"rate_rps": 10, "max_wait_ms": -0.5})",
                      "$.workload.max_wait_ms");
}

TEST(WorkloadSpecErrorTest, BatchBodyMustFit32Bits) {
  // 1 MiB requests x 1 Mi batch = 2^40 bytes: over the 32-bit body field.
  expect_config_error(
      R"({"rate_rps": 10, "request_bytes": 1048576, "max_batch": 1048576})",
      "$.workload.max_batch");
}

// ---------------------------------------------------------------------------
// SimConfig integration: gating and round-trip
// ---------------------------------------------------------------------------

TEST(WorkloadConfigTest, DisabledWorkloadOmittedFromConfigJson) {
  const SimConfig cfg;
  EXPECT_EQ(cfg.to_json().dump(2).find("workload"), std::string::npos);
}

TEST(WorkloadConfigTest, EnabledWorkloadRoundTripsThroughSimConfig) {
  SimConfig cfg;
  cfg.workload.rate_rps = 42.0;
  cfg.workload.max_batch = 9;
  const SimConfig back = SimConfig::from_json(cfg.to_json());
  EXPECT_TRUE(back.workload.enabled());
  EXPECT_DOUBLE_EQ(back.workload.rate_rps, 42.0);
  EXPECT_EQ(back.workload.max_batch, 9u);
  EXPECT_EQ(back.to_json().dump(2), cfg.to_json().dump(2));
}

TEST(WorkloadConfigTest, SimConfigParseNamesWorkloadPath) {
  SimConfig cfg;
  json::Value doc = cfg.to_json();
  doc.as_object()["workload"] = json::parse(R"({"rate_rps": -5})");
  try {
    (void)SimConfig::from_json(doc);
    FAIL() << "expected config error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("$.workload.rate_rps"),
              std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(WorkloadConfigTest, ValidateRunsWorkloadChecks) {
  SimConfig cfg;
  cfg.workload.rate_rps = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace bftsim

#include "baseline/baseline.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace bftsim {
namespace {

SimConfig pbft_config(std::uint32_t n = 8, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = n;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.max_time_ms = 120'000;
  return cfg;
}

TEST(BaselineTest, RunsPbftToTermination) {
  const RunResult result = baseline::run_baseline_simulation(pbft_config());
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

TEST(BaselineTest, ProtocolOutcomeMatchesMessageLevelEngine) {
  // Same protocol, same seed: the packet-level substrate adds only
  // sub-millisecond serialization/crypto overheads, so the decision must
  // be the same and the latency within a few percent.
  const SimConfig cfg = pbft_config(16, 2);
  const RunResult fast = run_simulation(cfg);
  const RunResult slow = baseline::run_baseline_simulation(cfg);
  ASSERT_TRUE(fast.terminated);
  ASSERT_TRUE(slow.terminated);
  EXPECT_NEAR(slow.latency_ms(), fast.latency_ms(), fast.latency_ms() * 0.15);
  EXPECT_EQ(fast.decisions.size(), slow.decisions.size());
}

TEST(BaselineTest, GeneratesManyMoreEvents) {
  const SimConfig cfg = pbft_config(16);
  const RunResult fast = run_simulation(cfg);
  const RunResult slow = baseline::run_baseline_simulation(cfg);
  // Fragmentation + per-hop + ack + crypto: an order of magnitude or more.
  EXPECT_GT(slow.events_processed, 8 * fast.events_processed);
}

TEST(BaselineTest, PacketAccounting) {
  SimConfig cfg = pbft_config(4);
  baseline::PacketLevelController controller{cfg};
  const RunResult result = controller.run();
  ASSERT_TRUE(result.terminated);
  EXPECT_GT(controller.packet_events(), 0u);
  EXPECT_GT(controller.frames_allocated(), result.messages_sent);
}

TEST(BaselineTest, SmallerMtuMeansMoreEvents) {
  const SimConfig cfg = pbft_config(8);
  baseline::LinkModel coarse;
  coarse.mtu_bytes = 256;
  baseline::LinkModel fine;
  fine.mtu_bytes = 32;
  const RunResult a = baseline::run_baseline_simulation(cfg, coarse);
  const RunResult b = baseline::run_baseline_simulation(cfg, fine);
  ASSERT_TRUE(a.terminated);
  ASSERT_TRUE(b.terminated);
  EXPECT_GT(b.events_processed, a.events_processed);
}

TEST(BaselineTest, FailstopStillWorks) {
  SimConfig cfg = pbft_config(16, 3);
  cfg.honest = 12;
  const RunResult result = baseline::run_baseline_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_TRUE(result.decisions_consistent());
}

class BaselineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineSweep, DeterministicAndConsistent) {
  const SimConfig cfg = pbft_config(8, GetParam());
  const RunResult a = baseline::run_baseline_simulation(cfg);
  const RunResult b = baseline::run_baseline_simulation(cfg);
  ASSERT_TRUE(a.terminated);
  EXPECT_EQ(a.termination_time, b.termination_time);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_TRUE(a.decisions_consistent());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace bftsim

#include <gtest/gtest.h>

#include <set>

#include "crypto/certificate.hpp"
#include "crypto/hash.hpp"
#include "crypto/signature.hpp"
#include "crypto/vrf.hpp"

namespace bftsim {
namespace {

// --- hash --------------------------------------------------------------------

TEST(HashTest, Fnv1aKnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, Mix64IsBijectiveSpotCheck) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashTest, HashWordsOrderSensitive) {
  EXPECT_NE(hash_words({1, 2, 3}), hash_words({3, 2, 1}));
  EXPECT_NE(hash_words({1, 2}), hash_words({1, 2, 0}));
  EXPECT_EQ(hash_words({1, 2, 3}), hash_words({1, 2, 3}));
}

// --- vrf ---------------------------------------------------------------------

TEST(VrfTest, EvaluateIsDeterministic) {
  const Vrf vrf{42};
  EXPECT_EQ(vrf.evaluate(3, 7), vrf.evaluate(3, 7));
}

TEST(VrfTest, DistinctInputsDistinctOutputs) {
  const Vrf vrf{42};
  EXPECT_NE(vrf.evaluate(3, 7).value, vrf.evaluate(4, 7).value);
  EXPECT_NE(vrf.evaluate(3, 7).value, vrf.evaluate(3, 8).value);
}

TEST(VrfTest, DifferentSecretsDiffer) {
  EXPECT_NE(Vrf{1}.evaluate(0, 0).value, Vrf{2}.evaluate(0, 0).value);
}

TEST(VrfTest, VerifyAcceptsGenuineAndRejectsForged) {
  const Vrf vrf{99};
  const VrfOutput out = vrf.evaluate(5, 11);
  EXPECT_TRUE(vrf.verify(5, 11, out));
  EXPECT_FALSE(vrf.verify(6, 11, out));  // wrong claimed node
  EXPECT_FALSE(vrf.verify(5, 12, out));  // wrong round
  VrfOutput forged = out;
  forged.value ^= 1;
  EXPECT_FALSE(vrf.verify(5, 11, forged));
  forged = out;
  forged.proof ^= 1;
  EXPECT_FALSE(vrf.verify(5, 11, forged));
}

TEST(VrfTest, LeaderElectionIsRoughlyUniform) {
  // Over many rounds the minimum credential should rotate across nodes.
  const Vrf vrf{7};
  const std::uint32_t n = 16;
  std::vector<int> wins(n, 0);
  for (std::uint64_t round = 0; round < 1600; ++round) {
    NodeId winner = 0;
    std::uint64_t best = ~0ULL;
    for (NodeId i = 0; i < n; ++i) {
      const std::uint64_t v = vrf.evaluate(i, round).value;
      if (v < best) {
        best = v;
        winner = i;
      }
    }
    ++wins[winner];
  }
  for (const int w : wins) {
    EXPECT_GT(w, 50);   // expected 100 each
    EXPECT_LT(w, 180);
  }
}

// --- signatures ----------------------------------------------------------------

TEST(SignatureTest, SignVerifyRoundTrip) {
  const Signer signer{5};
  const Signature sig = signer.sign(3, 0xabcdef);
  EXPECT_TRUE(signer.verify(sig));
}

TEST(SignatureTest, RejectsTamperedFields) {
  const Signer signer{5};
  Signature sig = signer.sign(3, 0xabcdef);
  Signature bad = sig;
  bad.signer = 4;  // impersonation
  EXPECT_FALSE(signer.verify(bad));
  bad = sig;
  bad.digest ^= 1;  // different message
  EXPECT_FALSE(signer.verify(bad));
  bad = sig;
  bad.tag ^= 1;  // forged tag
  EXPECT_FALSE(signer.verify(bad));
}

TEST(SignatureTest, DifferentRunSecretsIncompatible) {
  const Signer a{1};
  const Signer b{2};
  EXPECT_FALSE(b.verify(a.sign(0, 42)));
}

// --- certificates ----------------------------------------------------------------

TEST(CertificateTest, QuorumCertValidity) {
  QuorumCert qc;
  qc.view = 3;
  qc.block = 0x42;
  qc.signers = {0, 1, 2, 3, 4};
  EXPECT_TRUE(qc.valid(5));
  EXPECT_TRUE(qc.valid(4));
  EXPECT_FALSE(qc.valid(6));
}

TEST(CertificateTest, DuplicateSignersRejected) {
  QuorumCert qc;
  qc.signers = {0, 1, 1, 2, 3};
  EXPECT_FALSE(qc.valid(5));
  EXPECT_FALSE(qc.valid(4));  // any duplicate invalidates the certificate
}

TEST(CertificateTest, DuplicateSignersNeverSatisfyQuorum) {
  QuorumCert qc;
  qc.signers = {7, 7, 7, 7, 7};
  EXPECT_FALSE(qc.valid(2));
}

TEST(CertificateTest, DigestSensitivity) {
  QuorumCert a;
  a.view = 1;
  a.block = 2;
  a.signers = {0, 1, 2};
  QuorumCert b = a;
  EXPECT_EQ(a.digest(), b.digest());
  b.signers.push_back(3);
  EXPECT_NE(a.digest(), b.digest());
  b = a;
  b.view = 2;
  EXPECT_NE(a.digest(), b.digest());
}

TEST(CertificateTest, TimeoutCertValidity) {
  TimeoutCert tc;
  tc.view = 9;
  tc.signers = {0, 1, 2};
  EXPECT_TRUE(tc.valid(3));
  EXPECT_FALSE(tc.valid(4));
  tc.signers = {0, 0, 1};
  EXPECT_FALSE(tc.valid(3));
}

TEST(CertificateTest, GenesisCert) {
  const QuorumCert genesis = QuorumCert::genesis();
  EXPECT_EQ(genesis.view, 0u);
  EXPECT_FALSE(genesis.valid(1));  // only special-cased by the protocols
}

}  // namespace
}  // namespace bftsim

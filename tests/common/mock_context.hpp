// A scripted Context for unit-testing protocol Node implementations
// directly: tests feed messages/timers by hand and inspect exactly what
// the node sent, scheduled, reported, and recorded — no event loop, no
// network, no other nodes.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "protocols/node.hpp"

namespace bftsim::testing {

class MockContext final : public Context {
 public:
  struct Sent {
    NodeId dst = kNoNode;  ///< kNoNode means broadcast
    PayloadPtr payload;
    bool include_self = false;
  };
  struct TimerReq {
    TimerId id = 0;
    Time delay = 0;
    std::uint64_t tag = 0;
  };

 private:
  // First data member on purpose: members destroy in reverse declaration
  // order, and the arena must outlive `sent` (whose PayloadPtrs may point
  // into it).
  Arena arena_;

 public:
  MockContext(NodeId id, std::uint32_t n, std::uint32_t f, Time lambda)
      : id_(id), n_(n), f_(f), lambda_(lambda), rng_(id + 1), vrf_(7), signer_(7) {}

  // --- Context ---------------------------------------------------------------
  NodeId id() const noexcept override { return id_; }
  std::uint32_t n() const noexcept override { return n_; }
  std::uint32_t f() const noexcept override { return f_; }
  Time lambda() const noexcept override { return lambda_; }
  Time now() const noexcept override { return now_; }

  void send(NodeId dst, PayloadPtr payload) override {
    sent.push_back({dst, std::move(payload), false});
  }
  void broadcast(PayloadPtr payload, bool include_self) override {
    sent.push_back({kNoNode, std::move(payload), include_self});
  }

  TimerId set_timer(Time delay, std::uint64_t tag) override {
    const TimerId id = next_timer_++;
    timers.push_back({id, delay, tag});
    return id;
  }
  void cancel_timer(TimerId id) override { cancelled.push_back(id); }

  void report_decision(Value value) override { decisions.push_back(value); }
  void record_view(View view) override { views.push_back(view); }

  Rng& rng() noexcept override { return rng_; }
  const Vrf& vrf() const noexcept override { return vrf_; }
  const Signer& signer() const noexcept override { return signer_; }
  Arena& arena() noexcept override { return arena_; }

  // --- test driving helpers -----------------------------------------------------
  void advance_to(Time t) noexcept { now_ = t; }

  /// Delivers `payload` to `node` as if sent by `src` at the current time.
  template <typename P>
  void deliver(Node& node, NodeId src, std::shared_ptr<const P> payload) {
    Message msg;
    msg.src = src;
    msg.dst = id_;
    msg.send_time = now_;
    msg.id = next_msg_id_++;
    msg.payload = std::move(payload);
    node.on_message(msg, *this);
  }

  /// Fires the given pending timer request.
  void fire(Node& node, const TimerReq& req) {
    node.on_timer(TimerEvent{req.id, req.tag, now_}, *this);
  }

  /// Payloads of type P among everything sent so far (broadcast or direct).
  template <typename P>
  [[nodiscard]] std::vector<const P*> sent_of() const {
    std::vector<const P*> out;
    for (const Sent& s : sent) {
      if (const auto* p = dynamic_cast<const P*>(s.payload.get())) out.push_back(p);
    }
    return out;
  }

  void clear_sent() { sent.clear(); }

  std::vector<Sent> sent;
  std::vector<TimerReq> timers;
  std::vector<TimerId> cancelled;
  std::vector<Value> decisions;
  std::vector<View> views;

 private:
  NodeId id_;
  std::uint32_t n_;
  std::uint32_t f_;
  Time lambda_;
  Time now_ = 0;
  Rng rng_;
  Vrf vrf_;
  Signer signer_;
  TimerId next_timer_ = 1;
  std::uint64_t next_msg_id_ = 1;
};

}  // namespace bftsim::testing

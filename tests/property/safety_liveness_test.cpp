// Cross-protocol property tests: for every protocol, across node counts,
// fault loads and seeds, each run must satisfy
//   - agreement:  no two honest nodes decide different values at a height,
//   - termination: all honest nodes decide within the horizon,
//   - determinism: identical configurations yield identical traces.
#include <gtest/gtest.h>

#include <map>

#include "core/json.hpp"
#include "explore/oracles.hpp"
#include "protocols/registry.hpp"
#include "sim/simulation.hpp"

namespace bftsim {
namespace {

struct Case {
  std::string protocol;
  std::uint32_t n;
  std::uint32_t failstops;
  std::uint64_t seed;
};

void PrintTo(const Case& c, std::ostream* os) {
  *os << c.protocol << "/n" << c.n << "/f" << c.failstops << "/s" << c.seed;
}

SimConfig make_config(const Case& c) {
  SimConfig cfg;
  cfg.protocol = c.protocol;
  cfg.n = c.n;
  cfg.honest = c.n - c.failstops;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = c.seed;
  cfg.decisions =
      ProtocolRegistry::instance().get(c.protocol).measured_decisions;
  cfg.max_time_ms = 600'000;
  return cfg;
}

class ProtocolProperties : public ::testing::TestWithParam<Case> {};

TEST_P(ProtocolProperties, AgreementTerminationDeterminism) {
  const Case& c = GetParam();
  SimConfig cfg = make_config(c);
  cfg.record_trace = true;

  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated) << "did not terminate";
  EXPECT_TRUE(result.decisions_consistent()) << "agreement violated";

  // All honest nodes reached the target.
  std::map<NodeId, std::uint32_t> counts;
  for (const Decision& d : result.decisions) ++counts[d.node];
  for (const NodeId node : result.honest) {
    EXPECT_GE(counts[node], cfg.decisions) << "node " << node << " short";
  }

  // Determinism: identical run, identical trace.
  const RunResult replay = run_simulation(cfg);
  EXPECT_EQ(result.trace.fingerprint(), replay.trace.fingerprint());
  EXPECT_EQ(result.termination_time, replay.termination_time);
  EXPECT_EQ(result.messages_sent, replay.messages_sent);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const std::vector<std::string> protocols{
      "addv1",   "addv2", "addv3",       "algorand",   "asyncba",
      "pbft",    "hotstuff-ns", "librabft", "tendermint", "sync-hotstuff"};
  for (const std::string& protocol : protocols) {
    const auto& info = ProtocolRegistry::instance().get(protocol);
    for (const std::uint32_t n : {7u, 16u}) {
      for (const std::uint64_t seed : {1ull, 17ull}) {
        cases.push_back({protocol, n, 0, seed});
      }
      // Maximum tolerated fail-stop load.
      cases.push_back({protocol, n, info.fault_threshold(n), 5});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name = info.param.protocol + "_n" +
                     std::to_string(info.param.n) + "_f" +
                     std::to_string(info.param.failstops) + "_s" +
                     std::to_string(info.param.seed);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolProperties,
                         ::testing::ValuesIn(all_cases()), case_name);

// Delay-distribution robustness: every protocol stays safe and live under
// constant, uniform, heavy-tailed exponential and high-variance normal
// delays (the Fig. 3 environments and beyond).
class DelayRobustness
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(DelayRobustness, SafeAndLiveUnderAllDelayModels) {
  const auto& [protocol, delay_index] = GetParam();
  const DelaySpec specs[] = {
      DelaySpec::constant(250),
      DelaySpec::uniform(50, 450),
      DelaySpec::normal(1000, 1000),
      DelaySpec::exponential(250),
  };
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = specs[delay_index];
  cfg.seed = 9;
  cfg.decisions =
      ProtocolRegistry::instance().get(protocol).measured_decisions;
  cfg.max_time_ms = 600'000;

  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated)
      << protocol << " under " << cfg.delay.describe();
  EXPECT_TRUE(result.decisions_consistent());
}

std::string delay_case_name(
    const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
  static const char* kNames[] = {"constant", "uniform", "wide_normal", "exponential"};
  std::string name = std::get<0>(info.param);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" + kNames[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DelayRobustness,
    ::testing::Combine(::testing::Values("addv1", "addv2", "addv3", "algorand",
                                         "asyncba", "pbft", "hotstuff-ns",
                                         "librabft"),
                       ::testing::Values(0, 1, 2, 3)),
    delay_case_name);

// Invariant-oracle sweep: every protocol, checked against the full oracle
// battery (agreement, validity, completeness, certificate validity,
// liveness-under-quiescence) in three environments — undisturbed, a
// transient crash, and a healing partition. The oracles are exactly the
// ones the fuzzer uses, so a pass here certifies the baseline the fuzzing
// campaigns measure deviations from.
enum class Disturbance { kNone, kCrash, kPartition };

struct OracleCase {
  std::string protocol;
  Disturbance disturbance;
};

void PrintTo(const OracleCase& c, std::ostream* os) {
  static const char* kNames[] = {"none", "crash", "partition"};
  *os << c.protocol << "/" << kNames[static_cast<int>(c.disturbance)];
}

class OracleSweep : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleSweep, RunSatisfiesEveryInvariantOracle) {
  const OracleCase& c = GetParam();
  SimConfig cfg;
  cfg.protocol = c.protocol;
  cfg.n = 7;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = 23;
  cfg.decisions =
      ProtocolRegistry::instance().get(c.protocol).measured_decisions;
  cfg.max_time_ms = 600'000;
  cfg.record_trace = true;  // the certificate oracle reads the trace
  switch (c.disturbance) {
    case Disturbance::kNone:
      break;
    case Disturbance::kCrash:
      cfg.faults.crashes.push_back({1, 500.0, 3'000.0});
      break;
    case Disturbance::kPartition: {
      cfg.attack = "partition";
      json::Object params;
      params["subnets"] = static_cast<std::int64_t>(2);
      params["resolve_ms"] = 5'000.0;
      params["mode"] = "drop";
      cfg.attack_params = json::Value{std::move(params)};
      break;
    }
  }

  const RunResult result = run_simulation(cfg);
  const explore::OracleReport report = explore::check_oracles(cfg, result);
  EXPECT_TRUE(report.ok) << report.to_string();
  // Undisturbed and healed-partition runs must actually finish. A
  // transient crash gets no such demand: a node down during a one-shot
  // protocol's only round legitimately misses it, and the oracles (which
  // only require liveness of quiescent runs) excuse the timeout the same
  // way — but safety above was checked regardless.
  if (c.disturbance != Disturbance::kCrash) {
    EXPECT_TRUE(result.terminated) << "did not decide within the horizon";
  }
}

std::vector<OracleCase> oracle_cases() {
  std::vector<OracleCase> cases;
  for (const char* protocol :
       {"addv1", "addv2", "addv3", "algorand", "asyncba", "pbft",
        "hotstuff-ns", "librabft", "tendermint", "sync-hotstuff"}) {
    cases.push_back({protocol, Disturbance::kNone});
    cases.push_back({protocol, Disturbance::kCrash});
    // A partition is temporary asynchrony — a modeled violation of the
    // synchronous network assumption, so sync protocols are exempt (the
    // scenario generator applies the same rule).
    const auto& info = ProtocolRegistry::instance().get(protocol);
    if (info.model != NetModel::kSync) {
      cases.push_back({protocol, Disturbance::kPartition});
    }
  }
  return cases;
}

std::string oracle_case_name(const ::testing::TestParamInfo<OracleCase>& info) {
  static const char* kNames[] = {"none", "crash", "partition"};
  std::string name = info.param.protocol + "_" +
                     kNames[static_cast<int>(info.param.disturbance)];
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, OracleSweep,
                         ::testing::ValuesIn(oracle_cases()),
                         oracle_case_name);

}  // namespace
}  // namespace bftsim

// FaultPlan expansion: determinism in (config, seed), window merging, and
// strict config parsing / validation with path-aware errors.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/json.hpp"
#include "core/rng.hpp"
#include "faults/fault_config.hpp"
#include "faults/fault_plan.hpp"

namespace bftsim {
namespace {

FaultConfig parse(const std::string& text) {
  return FaultConfig::from_json(json::parse(text));
}

TEST(FaultPlan, ExplicitWindowsExpandToSortedTimeline) {
  FaultConfig cfg;
  cfg.crashes.push_back({2, 100.0, 50.0});
  cfg.link_flaps.push_back({0, 1, 20.0, 10.0});

  const FaultPlan plan = FaultPlan::build(cfg, 4, Rng{1});
  ASSERT_EQ(plan.events().size(), 4u);

  EXPECT_EQ(plan.events()[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(plan.events()[0].at, from_ms(20.0));
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kLinkUp);
  EXPECT_EQ(plan.events()[1].at, from_ms(30.0));
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events()[2].a, 2u);
  EXPECT_EQ(plan.events()[2].until, from_ms(150.0));
  EXPECT_EQ(plan.events()[3].kind, FaultKind::kRecover);

  for (std::size_t i = 1; i < plan.events().size(); ++i) {
    EXPECT_LE(plan.events()[i - 1].at, plan.events()[i].at);
  }
}

TEST(FaultPlan, OverlappingWindowsMerge) {
  FaultConfig cfg;
  cfg.crashes.push_back({0, 100.0, 50.0});   // [100, 150)
  cfg.crashes.push_back({0, 120.0, 100.0});  // [120, 220) — overlaps
  cfg.crashes.push_back({0, 150.0, 10.0});   // [150, 160) — inside merged

  const FaultPlan plan = FaultPlan::build(cfg, 2, Rng{1});
  ASSERT_EQ(plan.events().size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events()[0].at, from_ms(100.0));
  EXPECT_EQ(plan.events()[0].until, from_ms(220.0));
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kRecover);
  EXPECT_EQ(plan.events()[1].at, from_ms(220.0));
}

TEST(FaultPlan, SameSeedSameTimeline) {
  FaultConfig cfg;
  cfg.random_crashes = {3, 0.0, 1000.0, 10.0, 100.0};
  cfg.random_link_flaps = {5, 0.0, 1000.0, 5.0, 50.0};

  const FaultPlan a = FaultPlan::build(cfg, 8, Rng{42});
  const FaultPlan b = FaultPlan::build(cfg, 8, Rng{42});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].a, b.events()[i].a);
    EXPECT_EQ(a.events()[i].b, b.events()[i].b);
  }
}

TEST(FaultPlan, DifferentSeedDifferentTimeline) {
  FaultConfig cfg;
  cfg.random_crashes = {4, 0.0, 1000.0, 10.0, 100.0};
  const FaultPlan a = FaultPlan::build(cfg, 8, Rng{1});
  const FaultPlan b = FaultPlan::build(cfg, 8, Rng{2});
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(FaultPlan, RandomLinkFlapsNeverSelfLink) {
  FaultConfig cfg;
  cfg.random_link_flaps = {50, 0.0, 1000.0, 1.0, 10.0};
  const FaultPlan plan = FaultPlan::build(cfg, 3, Rng{7});
  for (const FaultEvent& ev : plan.events()) {
    if (ev.kind == FaultKind::kLinkDown || ev.kind == FaultKind::kLinkUp) {
      EXPECT_NE(ev.a, ev.b);
      EXPECT_LT(ev.a, 3u);
      EXPECT_LT(ev.b, 3u);
    }
  }
}

TEST(FaultConfigJson, RoundTrips) {
  FaultConfig cfg;
  cfg.crashes.push_back({1, 100.0, 50.0});
  cfg.link_flaps.push_back({0, 2, 20.0, 10.0});
  cfg.random_crashes = {2, 0.0, 500.0, 10.0, 20.0};
  cfg.corruption = {0.25, 0.0, 300.0};
  cfg.clock = {5.0, 0.01};

  const FaultConfig back = FaultConfig::from_json(cfg.to_json());
  EXPECT_EQ(back.to_json().dump(), cfg.to_json().dump());
  EXPECT_TRUE(back.enabled());
}

TEST(FaultConfigJson, UnknownKeyNamesPath) {
  try {
    (void)parse(R"({"crashs": []})");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), "config error at $.faults.crashs: unknown key");
  }
}

TEST(FaultConfigJson, OutOfRangeCorruptionRateNamesPath) {
  try {
    (void)parse(R"({"corruption": {"rate": 1.5}})");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("$.faults.corruption.rate"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultConfigJson, BadWindowNamesEntryPath) {
  try {
    (void)parse(R"({"crashes": [{"node": 0, "at_ms": 10, "duration_ms": 0}]})");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("$.faults.crashes[0].duration_ms"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultConfigValidate, NodeOutOfRange) {
  FaultConfig cfg;
  cfg.crashes.push_back({9, 0.0, 10.0});
  try {
    cfg.validate(4);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("$.faults.crashes[0].node"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultConfigValidate, SelfLinkRejected) {
  FaultConfig cfg;
  cfg.link_flaps.push_back({1, 1, 0.0, 10.0});
  EXPECT_THROW(cfg.validate(4), std::invalid_argument);
}

}  // namespace
}  // namespace bftsim

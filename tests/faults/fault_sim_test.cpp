// End-to-end fault-injection tests: crash/recover liveness, corruption
// rejection, clock skew, determinism of fault runs, validator replay, and
// cross-protocol safety under a combined crash + link-flap schedule.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "crypto/signature.hpp"
#include "faults/fault_injector.hpp"
#include "protocols/registry.hpp"
#include "sim/simulation.hpp"
#include "validator/validator.hpp"

namespace bftsim {
namespace {

SimConfig base_config(const std::string& protocol, std::uint32_t n,
                      std::uint64_t seed) {
  SimConfig cfg;
  cfg.protocol = protocol;
  cfg.n = n;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = seed;
  cfg.decisions =
      ProtocolRegistry::instance().get(protocol).measured_decisions;
  cfg.max_time_ms = 600'000;
  return cfg;
}

// --- crash / recover -------------------------------------------------------

class CrashRecoverLiveness : public ::testing::TestWithParam<std::string> {};

TEST_P(CrashRecoverLiveness, SystemDecidesAndStaysSafe) {
  // One node is dead for an early window; the remaining n-1 ≥ quorum keep
  // deciding, and the run must terminate (every honest node, including the
  // recovered one, reaches the target) without a safety violation.
  SimConfig cfg = base_config(GetParam(), 4, 11);
  cfg.faults.crashes.push_back({1, 300.0, 2000.0});

  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated)
      << "no liveness under crash/recover: " << to_string(result.termination_reason);
  const SafetyReport safety = check_run_safety(result);
  EXPECT_TRUE(safety.ok) << safety.diagnosis;
}

INSTANTIATE_TEST_SUITE_P(Protocols, CrashRecoverLiveness,
                         ::testing::Values("hotstuff-ns", "pbft"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CrashRecover, MessagesAreDroppedDuringWindow) {
  SimConfig cfg = base_config("pbft", 4, 3);
  cfg.faults.crashes.push_back({2, 100.0, 3000.0});

  const RunResult faulty = run_simulation(cfg);
  SimConfig clean = cfg;
  clean.faults = FaultConfig{};
  const RunResult baseline = run_simulation(clean);

  EXPECT_GT(faulty.messages_dropped, baseline.messages_dropped);
}

// --- link flaps ------------------------------------------------------------

TEST(LinkFlap, PairwisePartitionDropsTrafficAndHeals) {
  SimConfig cfg = base_config("pbft", 4, 5);
  // Cut node 0 off from 1 and 2 for a while; quorums still form around it.
  cfg.faults.link_flaps.push_back({0, 1, 200.0, 1500.0});
  cfg.faults.link_flaps.push_back({0, 2, 200.0, 1500.0});

  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  EXPECT_GT(result.messages_dropped, 0u);
  const SafetyReport safety = check_run_safety(result);
  EXPECT_TRUE(safety.ok) << safety.diagnosis;
}

// --- corruption ------------------------------------------------------------

TEST(Corruption, PerturbedDigestFailsSignatureVerification) {
  // The payload-level model mirrors what real signature checks would do:
  // a signature over the original digest must not verify against the
  // corrupted digest.
  const Signer signer{12345};
  const std::uint64_t digest = 0xfeedbeefcafe1234ull;
  Signature sig = signer.sign(0, digest);
  ASSERT_TRUE(signer.verify(sig));
  sig.digest = digest ^ CorruptedPayload::kPerturbation;
  EXPECT_FALSE(signer.verify(sig));
}

TEST(Corruption, CorruptedPayloadCarriesUnknownTagAndPerturbedDigest) {
  class Dummy final : public Payload {
   public:
    Dummy() : Payload(PayloadType::kPbftPrepare) {}
    std::string_view type() const noexcept override { return "dummy"; }
    std::uint64_t digest() const noexcept override { return 42; }
    std::size_t wire_size() const noexcept override { return 99; }
  };
  const auto wrapped = std::make_shared<const CorruptedPayload>(
      make_payload<Dummy>());
  EXPECT_EQ(wrapped->type_id(), PayloadType::kUnknown);
  EXPECT_EQ(wrapped->digest(), 42ull ^ CorruptedPayload::kPerturbation);
  EXPECT_EQ(wrapped->wire_size(), 99u);

  // The kUnknown tag means no protocol tag switch will ever dispatch it —
  // the receiver discards it exactly like a message failing verification.
  Message msg;
  msg.payload = wrapped;
  EXPECT_EQ(msg.type_id(), PayloadType::kUnknown);
  EXPECT_FALSE(msg.is(PayloadType::kPbftPrepare));
}

TEST(Corruption, ProtocolRejectsCorruptedMessagesAndStaysSafe) {
  SimConfig cfg = base_config("pbft", 4, 7);
  cfg.faults.corruption = {0.10, 0.0, 0.0};  // 10% of sends, whole run

  const RunResult result = run_simulation(cfg);
  EXPECT_GT(result.messages_corrupted, 0u);
  ASSERT_TRUE(result.terminated)
      << "corruption at 10% should only slow the run down";
  const SafetyReport safety = check_run_safety(result);
  EXPECT_TRUE(safety.ok) << safety.diagnosis;
}

// --- clock skew / drift ----------------------------------------------------

TEST(ClockSkew, SkewedTimersStaySafeAndLive) {
  SimConfig cfg = base_config("hotstuff-ns", 4, 9);
  cfg.faults.clock = {50.0, 0.05};  // ±50ms skew, ±5% drift

  const RunResult result = run_simulation(cfg);
  ASSERT_TRUE(result.terminated);
  const SafetyReport safety = check_run_safety(result);
  EXPECT_TRUE(safety.ok) << safety.diagnosis;
}

// --- determinism -----------------------------------------------------------

TEST(FaultDeterminism, SameSeedSameTrace) {
  SimConfig cfg = base_config("pbft", 4, 21);
  cfg.record_trace = true;
  cfg.faults.random_crashes = {1, 0.0, 2000.0, 500.0, 1500.0};
  cfg.faults.random_link_flaps = {2, 0.0, 3000.0, 100.0, 800.0};
  cfg.faults.corruption = {0.05, 0.0, 0.0};
  cfg.faults.clock = {10.0, 0.01};

  const RunResult a = run_simulation(cfg);
  const RunResult b = run_simulation(cfg);
  EXPECT_EQ(a.trace.fingerprint(), b.trace.fingerprint());
  EXPECT_EQ(a.termination_time, b.termination_time);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_corrupted, b.messages_corrupted);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
}

TEST(FaultDeterminism, DifferentSeedDifferentFaultTimeline) {
  SimConfig cfg = base_config("pbft", 4, 22);
  cfg.record_trace = true;
  cfg.faults.random_crashes = {1, 0.0, 2000.0, 500.0, 1500.0};

  const RunResult a = run_simulation(cfg);
  SimConfig other = cfg;
  other.seed = 23;
  const RunResult b = run_simulation(other);
  EXPECT_NE(a.trace.fingerprint(), b.trace.fingerprint());
}

// --- validator replay ------------------------------------------------------

TEST(FaultReplay, ValidatorReplaysFaultRunExactly) {
  // The fault timeline is a deterministic function of (config, seed), so a
  // recorded fault run replays exactly: crash/flap drops become recorded
  // drops, corrupted payloads corrupt identically, decisions match.
  SimConfig cfg = base_config("pbft", 4, 31);
  cfg.record_trace = true;
  cfg.faults.crashes.push_back({1, 300.0, 1500.0});
  cfg.faults.link_flaps.push_back({2, 3, 500.0, 1000.0});
  cfg.faults.corruption = {0.05, 0.0, 0.0};

  const RunResult recorded = run_simulation(cfg);
  const ValidationResult validation = validate_against_trace(cfg, recorded.trace);
  EXPECT_TRUE(validation.ok) << validation.to_string();
}

// --- cross-protocol safety matrix ------------------------------------------

class FaultMatrixSafety : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultMatrixSafety, SafeUnderCrashAndLinkFlapAtFaultThreshold) {
  // The acceptance schedule: f fail-stopped nodes PLUS transient crash and
  // link-flap windows on the survivors. Safety (agreement/validity) must
  // hold unconditionally; termination is not required at this fault load.
  const std::string protocol = GetParam();
  const auto& info = ProtocolRegistry::instance().get(protocol);
  SimConfig cfg = base_config(protocol, 7, 13);
  cfg.honest = cfg.n - info.fault_threshold(cfg.n);
  cfg.max_time_ms = 120'000;  // watchdog: bound the worst case
  cfg.faults.random_crashes = {2, 0.0, 10'000.0, 500.0, 2000.0};
  cfg.faults.random_link_flaps = {3, 0.0, 10'000.0, 200.0, 1500.0};

  const RunResult result = run_simulation(cfg);
  const SafetyReport safety = check_run_safety(result);
  EXPECT_TRUE(safety.agreement) << safety.diagnosis;
  EXPECT_TRUE(safety.validity) << safety.diagnosis;
  EXPECT_TRUE(safety.ok) << safety.diagnosis;
}

INSTANTIATE_TEST_SUITE_P(
    EightProtocols, FaultMatrixSafety,
    ::testing::Values("addv1", "addv2", "addv3", "algorand", "asyncba", "pbft",
                      "hotstuff-ns", "librabft"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace bftsim

#include "core/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace bftsim::json {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("3.5").as_number(), 3.5);
  EXPECT_EQ(parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse("\"hello\"").as_string(), "hello");
}

TEST(JsonTest, ParsesContainers) {
  const Value v = parse(R"({"a": [1, 2, 3], "b": {"c": true}})");
  ASSERT_TRUE(v.is_object());
  const Array& arr = v.as_object().at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[1].as_int(), 2);
  EXPECT_TRUE(v.as_object().at("b").as_object().at("c").as_bool());
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_EQ(parse("[]").as_array().size(), 0u);
  EXPECT_EQ(parse("{}").as_object().size(), 0u);
  EXPECT_EQ(parse("[[]]").as_array().at(0).as_array().size(), 0u);
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb\t\"c\"\\")").as_string(), "a\nb\t\"c\"\\");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(parse(R"("中")").as_string(), "\xe4\xb8\xad");
}

TEST(JsonTest, WhitespaceTolerant) {
  const Value v = parse("  {\n\t\"k\" :\r 1 }  ");
  EXPECT_EQ(v.as_object().at("k").as_int(), 1);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW((void)parse(""), Error);
  EXPECT_THROW((void)parse("{"), Error);
  EXPECT_THROW((void)parse("[1,]"), Error);
  EXPECT_THROW((void)parse("{\"a\" 1}"), Error);
  EXPECT_THROW((void)parse("tru"), Error);
  EXPECT_THROW((void)parse("1 2"), Error);   // trailing garbage
  EXPECT_THROW((void)parse("\"ab"), Error);  // unterminated string
  EXPECT_THROW((void)parse("\"\\x\""), Error);
  EXPECT_THROW((void)parse("{1: 2}"), Error);
  EXPECT_THROW((void)parse("nan"), Error);
}

TEST(JsonTest, TypeMismatchThrows) {
  const Value v = parse("[1]");
  EXPECT_THROW((void)v.as_object(), Error);
  EXPECT_THROW((void)v.as_string(), Error);
  EXPECT_THROW((void)parse("{}").as_object().at("missing"), Error);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  std::string keys;
  for (const auto& [k, val] : v.as_object()) keys += k;
  EXPECT_EQ(keys, "zam");
}

TEST(JsonTest, DumpParseRoundTrip) {
  const std::string doc =
      R"({"name":"bftsim","n":16,"delay":{"kind":"normal","a":250,"b":50},)"
      R"("flags":[true,false,null],"ratio":0.5})";
  const Value v = parse(doc);
  const Value again = parse(v.dump());
  EXPECT_EQ(again.as_object().at("n").as_int(), 16);
  EXPECT_EQ(again.as_object().at("delay").as_object().at("kind").as_string(),
            "normal");
  EXPECT_EQ(v.dump(), again.dump());
}

TEST(JsonTest, PrettyDumpIsReparsable) {
  const Value v = parse(R"({"a":[1,{"b":2}],"c":"x"})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty).dump(), v.dump());
}

TEST(JsonTest, DumpEscapesControlCharacters) {
  const Value v{std::string("a\nb\x01")};
  EXPECT_EQ(v.dump(), "\"a\\nb\\u0001\"");
}

TEST(JsonTest, GetHelpersWithDefaults) {
  const Value v = parse(R"({"n": 8, "name": "x", "flag": true})");
  EXPECT_EQ(v.get_int("n", 0), 8);
  EXPECT_EQ(v.get_int("missing", 42), 42);
  EXPECT_EQ(v.get_string("name", ""), "x");
  EXPECT_EQ(v.get_string("n", "fallback"), "fallback");  // type mismatch
  EXPECT_TRUE(v.get_bool("flag", false));
  EXPECT_DOUBLE_EQ(v.get_number("missing", 1.5), 1.5);
}

TEST(JsonTest, ParseFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bftsim_json_test.json";
  {
    std::ofstream out(path);
    out << R"({"protocol": "pbft", "n": 32})";
  }
  const Value v = parse_file(path);
  EXPECT_EQ(v.get_int("n", 0), 32);
  std::remove(path.c_str());
  EXPECT_THROW((void)parse_file(path), Error);
}

TEST(JsonTest, BuildsValuesProgrammatically) {
  Object obj;
  obj["n"] = 16;
  obj["list"] = Array{Value{1}, Value{"two"}};
  const Value v{std::move(obj)};
  EXPECT_EQ(parse(v.dump()).as_object().at("list").as_array().at(1).as_string(),
            "two");
}

TEST(JsonTest, DeepNesting) {
  std::string doc;
  const int depth = 100;
  for (int i = 0; i < depth; ++i) doc += "[";
  doc += "1";
  for (int i = 0; i < depth; ++i) doc += "]";
  const Value* v = new Value(parse(doc));
  const Value* cur = v;
  for (int i = 0; i < depth; ++i) cur = &cur->as_array().at(0);
  EXPECT_EQ(cur->as_int(), 1);
  delete v;
}

}  // namespace
}  // namespace bftsim::json

#include "core/trace.hpp"

#include <gtest/gtest.h>

namespace bftsim {
namespace {

TraceRecord send_record(NodeId a, NodeId b, Time at = 0) {
  TraceRecord rec;
  rec.kind = TraceKind::kSend;
  rec.at = at;
  rec.a = a;
  rec.b = b;
  rec.type = "test/msg";
  rec.digest = 0x1234;
  rec.msg_id = 1;
  return rec;
}

TEST(TraceTest, EmptyTrace) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.size(), 0u);
  const std::uint64_t empty_fp = trace.fingerprint();
  trace.add(send_record(0, 1));
  EXPECT_NE(trace.fingerprint(), empty_fp);
}

TEST(TraceTest, FingerprintIsOrderSensitive) {
  Trace ab;
  ab.add(send_record(0, 1));
  ab.add(send_record(1, 0));
  Trace ba;
  ba.add(send_record(1, 0));
  ba.add(send_record(0, 1));
  EXPECT_NE(ab.fingerprint(), ba.fingerprint());
}

TEST(TraceTest, FingerprintIsContentSensitive) {
  Trace a;
  a.add(send_record(0, 1, 10));
  Trace b;
  b.add(send_record(0, 1, 11));  // different time
  EXPECT_NE(a.fingerprint(), b.fingerprint());

  TraceRecord rec = send_record(0, 1, 10);
  rec.digest = 0x9999;  // different payload
  Trace c;
  c.add(rec);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(TraceTest, IdenticalTracesHaveIdenticalFingerprints) {
  Trace a;
  Trace b;
  for (int i = 0; i < 50; ++i) {
    a.add(send_record(static_cast<NodeId>(i % 4), 1, i));
    b.add(send_record(static_cast<NodeId>(i % 4), 1, i));
  }
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(TraceTest, ClearResets) {
  Trace trace;
  trace.add(send_record(0, 1));
  const std::uint64_t fp = Trace{}.fingerprint();
  trace.clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.fingerprint(), fp);
}

TEST(TraceTest, KindNames) {
  EXPECT_EQ(to_string(TraceKind::kSend), "send");
  EXPECT_EQ(to_string(TraceKind::kDeliver), "deliver");
  EXPECT_EQ(to_string(TraceKind::kDrop), "drop");
  EXPECT_EQ(to_string(TraceKind::kDecide), "decide");
  EXPECT_EQ(to_string(TraceKind::kViewChange), "view");
  EXPECT_EQ(to_string(TraceKind::kCorrupt), "corrupt");
}

TEST(TraceTest, ToStringContainsEssentials) {
  const std::string s = send_record(3, 7, from_ms(12.0)).to_string();
  EXPECT_NE(s.find("send"), std::string::npos);
  EXPECT_NE(s.find("3->7"), std::string::npos);
  EXPECT_NE(s.find("test/msg"), std::string::npos);
  EXPECT_NE(s.find("12"), std::string::npos);

  TraceRecord decide;
  decide.kind = TraceKind::kDecide;
  decide.a = 4;
  decide.view = 2;  // height
  decide.value = 77;
  const std::string d = decide.to_string();
  EXPECT_NE(d.find("decide"), std::string::npos);
  EXPECT_NE(d.find("height 2"), std::string::npos);
}

}  // namespace
}  // namespace bftsim

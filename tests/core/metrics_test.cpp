#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace bftsim {
namespace {

TEST(MetricsTest, Counters) {
  Metrics m;
  m.on_send();
  m.on_send();
  m.on_deliver();
  m.on_drop();
  m.on_inject();
  m.on_timer();
  m.on_event();
  EXPECT_EQ(m.messages_sent(), 2u);
  EXPECT_EQ(m.messages_delivered(), 1u);
  EXPECT_EQ(m.messages_dropped(), 1u);
  EXPECT_EQ(m.messages_injected(), 1u);
  EXPECT_EQ(m.timers_fired(), 1u);
  EXPECT_EQ(m.events_processed(), 1u);
}

TEST(MetricsTest, PerTypeCounts) {
  Metrics m;
  m.count_type("pbft/prepare");
  m.count_type("pbft/prepare");
  m.count_type("pbft/commit");
  EXPECT_EQ(m.per_type().at("pbft/prepare"), 2u);
  EXPECT_EQ(m.per_type().at("pbft/commit"), 1u);
}

TEST(MetricsTest, TaggedCountsReportUnderRegistryNames) {
  Metrics m;
  m.count_type(PayloadType::kPbftPrepare);
  m.count_type(PayloadType::kPbftPrepare);
  m.count_type(PayloadType::kHotStuffVote);
  const auto per_type = m.per_type();
  EXPECT_EQ(per_type.at("pbft/prepare"), 2u);
  EXPECT_EQ(per_type.at("hotstuff/vote"), 1u);
  EXPECT_FALSE(per_type.contains("pbft/commit"));
}

TEST(MetricsTest, TaggedAndUntaggedCountsMerge) {
  Metrics m;
  m.count_type(PayloadType::kPbftPrepare);
  m.count_type("pbft/prepare");   // untagged payload with the same name
  m.count_type("custom/gossip");  // untagged-only kind
  const auto per_type = m.per_type();
  EXPECT_EQ(per_type.at("pbft/prepare"), 2u);
  EXPECT_EQ(per_type.at("custom/gossip"), 1u);
}

TEST(MetricsTest, UserTagBeyondBuiltinRangeGrowsTheTable) {
  Metrics m;
  const auto user_tag =
      static_cast<PayloadType>(to_index(PayloadType::kUserBase) + 3);
  m.count_type(user_tag);
  m.count_type(user_tag);
  // Unregistered user tags report under the registry's fallback name.
  EXPECT_EQ(m.per_type().at(PayloadTypeRegistry::instance().name(user_tag)), 2u);
}

TEST(MetricsTest, DecisionCount) {
  Metrics m;
  m.on_decision({0, 10, 0, 100});
  m.on_decision({0, 20, 1, 101});
  m.on_decision({1, 15, 0, 100});
  EXPECT_EQ(m.decision_count(0), 2u);
  EXPECT_EQ(m.decision_count(1), 1u);
  EXPECT_EQ(m.decision_count(2), 0u);
}

TEST(MetricsTest, CompletionTimeIsLastNodesKth) {
  Metrics m;
  m.on_decision({0, 10, 0, 100});
  m.on_decision({1, 30, 0, 100});
  m.on_decision({2, 20, 0, 100});
  EXPECT_EQ(m.completion_time({0, 1, 2}, 1), 30);
  EXPECT_EQ(m.completion_time({0, 2}, 1), 20);
}

TEST(MetricsTest, CompletionTimeUnreachedIsNoTime) {
  Metrics m;
  m.on_decision({0, 10, 0, 100});
  EXPECT_EQ(m.completion_time({0, 1}, 1), kNoTime);  // node 1 never decided
  EXPECT_EQ(m.completion_time({0}, 2), kNoTime);     // only one decision
}

TEST(MetricsTest, CompletionTimeCountsKthPerNode) {
  Metrics m;
  m.on_decision({0, 10, 0, 1});
  m.on_decision({0, 40, 1, 2});
  m.on_decision({1, 20, 0, 1});
  m.on_decision({1, 30, 1, 2});
  EXPECT_EQ(m.completion_time({0, 1}, 2), 40);
}

TEST(MetricsTest, ViewRecords) {
  Metrics m;
  m.on_view({3, 100, 7});
  ASSERT_EQ(m.views().size(), 1u);
  EXPECT_EQ(m.views()[0].node, 3u);
  EXPECT_EQ(m.views()[0].view, 7u);
}

}  // namespace
}  // namespace bftsim

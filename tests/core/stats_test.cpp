#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace bftsim {
namespace {

TEST(StatsTest, EmptySampleIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsTest, SingleElement) {
  const Summary s = summarize({5.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(StatsTest, KnownSample) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(StatsTest, MedianOddCount) {
  EXPECT_DOUBLE_EQ(summarize({3.0, 1.0, 2.0}).median, 2.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.125), 15.0);
}

TEST(StatsTest, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 0.9), 7.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({1.0, 2.0}, 2.0), 2.0);  // clamped q
  EXPECT_DOUBLE_EQ(percentile_sorted({1.0, 2.0}, -1.0), 1.0);
}

TEST(StatsTest, AccumulatorMatchesSummarize) {
  Rng rng{123};
  std::vector<double> sample;
  Accumulator acc;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(100.0, 15.0);
    sample.push_back(x);
    acc.add(x);
  }
  const Summary s = summarize(sample);
  EXPECT_EQ(acc.count(), s.count);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-9);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(acc.min(), s.min);
  EXPECT_DOUBLE_EQ(acc.max(), s.max);
}

TEST(StatsTest, AccumulatorVarianceNeedsTwoSamples) {
  Accumulator acc;
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 2.0);
}

TEST(StatsTest, SummaryPercentilesOrdered) {
  Rng rng{77};
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(rng.exponential(10.0));
  const Summary s = summarize(sample);
  EXPECT_LE(s.min, s.median);
  EXPECT_LE(s.median, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
}

}  // namespace
}  // namespace bftsim

// Arena allocator: alignment, chunk growth, oversized requests,
// reset-reuse determinism, and the STL adapter (allocate_shared +
// containers). The reset-reuse test is the load-bearing one: replaying an
// identical allocation sequence at identical addresses is what keeps
// arena-backed runs deterministic run over run.
#include "core/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace bftsim {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, HandsOutDistinctWritableMemory) {
  Arena arena;
  auto* a = static_cast<std::uint64_t*>(arena.allocate(sizeof(std::uint64_t)));
  auto* b = static_cast<std::uint64_t*>(arena.allocate(sizeof(std::uint64_t)));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  *a = 0x1111;
  *b = 0x2222;
  EXPECT_EQ(*a, 0x1111u);  // writes must not alias
  EXPECT_EQ(*b, 0x2222u);
}

TEST(Arena, RespectsAlignment) {
  Arena arena;
  // Interleave odd sizes with strict alignments so the bump cursor lands
  // misaligned before every aligned request.
  for (const std::size_t align : {1UL, 2UL, 4UL, 8UL, 16UL, 64UL}) {
    (void)arena.allocate(3, 1);
    void* p = arena.allocate(align * 2, align);
    EXPECT_TRUE(aligned_to(p, align)) << "align=" << align;
  }
}

TEST(Arena, ZeroByteRequestsYieldDistinctPointers) {
  Arena arena;
  void* a = arena.allocate(0);
  void* b = arena.allocate(0);
  EXPECT_NE(a, b);
}

TEST(Arena, GrowsAcrossChunks) {
  Arena arena{128};  // tiny first chunk forces growth immediately
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.allocate(64);
    std::memset(p, i, 64);  // every byte must be usable
    ptrs.push_back(p);
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_GE(arena.bytes_allocated(), 100u * 64u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(Arena, OversizedRequestGetsExactFitChunk) {
  Arena arena{64};
  const std::size_t big = Arena::kMaxChunkBytes + 1024;
  void* p = arena.allocate(big);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, big);
  // A small allocation afterwards must still succeed (fresh chunk or tail).
  void* q = arena.allocate(16);
  EXPECT_NE(q, nullptr);
}

TEST(Arena, ResetReplaysIdenticalAddresses) {
  Arena arena{256};  // small chunks: the sequence spans several
  const auto run = [&] {
    std::vector<void*> ptrs;
    for (int i = 0; i < 64; ++i) {
      ptrs.push_back(arena.allocate(static_cast<std::size_t>(16 + (i % 7) * 8),
                                    i % 2 == 0 ? 8 : 16));
    }
    return ptrs;
  };
  const std::vector<void*> first = run();
  const std::size_t chunks_after_first = arena.chunk_count();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  const std::vector<void*> second = run();
  EXPECT_EQ(first, second);  // bit-identical replay, no new chunks
  EXPECT_EQ(arena.chunk_count(), chunks_after_first);
}

TEST(Arena, HighWaterSurvivesReset) {
  Arena arena;
  (void)arena.allocate(1000);
  const std::size_t hw = arena.high_water();
  EXPECT_GE(hw, 1000u);
  arena.reset();
  EXPECT_EQ(arena.high_water(), hw);
  (void)arena.allocate(10);
  EXPECT_EQ(arena.high_water(), hw);  // 10 < 1000: no new high water
}

TEST(ArenaAllocator, WorksWithAllocateShared) {
  Arena arena;
  struct Payload {
    std::uint64_t a;
    std::uint64_t b;
  };
  std::shared_ptr<const Payload> kept;
  {
    auto p = std::allocate_shared<Payload>(ArenaAllocator<Payload>(&arena),
                                           Payload{7, 9});
    kept = std::move(p);
  }
  EXPECT_EQ(kept->a, 7u);
  EXPECT_EQ(kept->b, 9u);
  EXPECT_GT(arena.bytes_allocated(), 0u);
  // Releasing the last reference runs the destructor; deallocate is a
  // no-op, so bytes_allocated does not shrink.
  const std::size_t before = arena.bytes_allocated();
  kept.reset();
  EXPECT_EQ(arena.bytes_allocated(), before);
}

TEST(ArenaAllocator, WorksAsContainerAllocator) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[999], 999);
  EXPECT_GT(arena.bytes_allocated(), 1000u * sizeof(int));
}

TEST(ArenaAllocator, EqualityComparesArenaIdentity) {
  Arena a;
  Arena b;
  EXPECT_TRUE(ArenaAllocator<int>(&a) == ArenaAllocator<long>(&a));
  EXPECT_FALSE(ArenaAllocator<int>(&a) == ArenaAllocator<int>(&b));
}

}  // namespace
}  // namespace bftsim

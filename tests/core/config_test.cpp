#include "core/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace bftsim {
namespace {

TEST(DelaySpecTest, Factories) {
  EXPECT_EQ(DelaySpec::constant(10).kind, DelaySpec::Kind::kConstant);
  EXPECT_EQ(DelaySpec::uniform(1, 2).kind, DelaySpec::Kind::kUniform);
  EXPECT_EQ(DelaySpec::normal(250, 50).kind, DelaySpec::Kind::kNormal);
  EXPECT_EQ(DelaySpec::exponential(100).kind, DelaySpec::Kind::kExponential);
}

TEST(DelaySpecTest, Describe) {
  EXPECT_EQ(DelaySpec::normal(250, 50).describe(), "N(250,50)");
  EXPECT_EQ(DelaySpec::constant(5).describe(), "C(5)");
  EXPECT_EQ(DelaySpec::uniform(1, 9).describe(), "U(1,9)");
  EXPECT_EQ(DelaySpec::exponential(42).describe(), "Exp(42)");
}

TEST(DelaySpecTest, JsonRoundTrip) {
  DelaySpec spec = DelaySpec::normal(250, 50);
  spec.min_ms = 2.0;
  spec.max_ms = 1000.0;
  const DelaySpec back = DelaySpec::from_json(spec.to_json());
  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_DOUBLE_EQ(back.a, spec.a);
  EXPECT_DOUBLE_EQ(back.b, spec.b);
  EXPECT_DOUBLE_EQ(back.min_ms, spec.min_ms);
  EXPECT_DOUBLE_EQ(back.max_ms, spec.max_ms);
}

TEST(DelaySpecTest, RejectsUnknownKind) {
  EXPECT_THROW((void)DelaySpec::from_json(json::parse(R"({"kind":"weird"})")),
               std::invalid_argument);
}

TEST(SimConfigTest, DefaultsAreValid) {
  SimConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.live_nodes(), cfg.n);  // honest == 0 means all live
}

TEST(SimConfigTest, LiveNodes) {
  SimConfig cfg;
  cfg.n = 16;
  cfg.honest = 11;
  EXPECT_EQ(cfg.live_nodes(), 11u);
}

TEST(SimConfigTest, ValidateRejectsBadValues) {
  SimConfig cfg;
  cfg.n = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.honest = cfg.n + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.lambda_ms = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.decisions = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.max_time_ms = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.protocol.clear();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.delay = DelaySpec::uniform(10, 5);  // hi < lo
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SimConfig{};
  cfg.delay.max_ms = 0.5;
  cfg.delay.min_ms = 1.0;  // max < min
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SimConfigTest, JsonRoundTrip) {
  SimConfig cfg;
  cfg.protocol = "hotstuff-ns";
  cfg.n = 32;
  cfg.honest = 27;
  cfg.lambda_ms = 500;
  cfg.delay = DelaySpec::uniform(100, 400);
  cfg.seed = 99;
  cfg.decisions = 10;
  cfg.attack = "partition";
  json::Object params;
  params["resolve_ms"] = 12000.0;
  cfg.attack_params = json::Value{std::move(params)};
  cfg.record_trace = true;

  const SimConfig back = SimConfig::from_json(cfg.to_json());
  EXPECT_EQ(back.protocol, cfg.protocol);
  EXPECT_EQ(back.n, cfg.n);
  EXPECT_EQ(back.honest, cfg.honest);
  EXPECT_DOUBLE_EQ(back.lambda_ms, cfg.lambda_ms);
  EXPECT_EQ(back.delay.kind, cfg.delay.kind);
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_EQ(back.decisions, cfg.decisions);
  EXPECT_EQ(back.attack, cfg.attack);
  EXPECT_DOUBLE_EQ(back.attack_params.get_number("resolve_ms", 0), 12000.0);
  EXPECT_TRUE(back.record_trace);
}

TEST(SimConfigTest, FromJsonUsesDefaultsForMissingKeys) {
  const SimConfig cfg = SimConfig::from_json(json::parse(R"({"protocol":"pbft"})"));
  EXPECT_EQ(cfg.protocol, "pbft");
  EXPECT_EQ(cfg.n, 16u);
  EXPECT_DOUBLE_EQ(cfg.lambda_ms, 1000.0);
}

TEST(SimConfigTest, FromJsonValidates) {
  EXPECT_THROW((void)SimConfig::from_json(json::parse(R"({"n": 0})")),
               std::invalid_argument);
}

// Strict parsing: malformed input produces a single-line error naming the
// exact JSON path, so a typo in a sweep file is caught immediately instead
// of being silently defaulted.

std::string error_of(const std::string& text) {
  try {
    (void)SimConfig::from_json(json::parse(text));
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(StrictConfigTest, UnknownTopLevelKeyNamesPath) {
  EXPECT_EQ(error_of(R"({"protocl": "pbft"})"),
            "config error at $.protocl: unknown key");
}

TEST(StrictConfigTest, OutOfRangeValuesNamePath) {
  EXPECT_NE(error_of(R"({"n": -4})").find("config error at $.n"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"lambda_ms": 0})").find("$.lambda_ms"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"decisions": 0})").find("$.decisions"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"seed": -1})").find("$.seed"), std::string::npos);
  EXPECT_NE(error_of(R"({"max_events": 0})").find("$.max_events"),
            std::string::npos);
}

TEST(StrictConfigTest, ErrorsAreSingleLine) {
  const std::string msg = error_of(R"({"n": -4})");
  ASSERT_FALSE(msg.empty());
  EXPECT_EQ(msg.find('\n'), std::string::npos);
}

TEST(StrictConfigTest, DelaySpecRejectsUnknownAndOutOfRangeKeys) {
  EXPECT_EQ(error_of(R"({"delay": {"kinb": "normal"}})"),
            "config error at $.delay.kinb: unknown key");
  EXPECT_NE(error_of(R"({"delay": {"kind": "weird"}})").find("$.delay.kind"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"delay": {"kind": "normal", "a": -1}})")
                .find("$.delay.a"),
            std::string::npos);
}

TEST(StrictConfigTest, CostAndTopologyNamePaths) {
  EXPECT_EQ(error_of(R"({"cost": {"verify": 1}})"),
            "config error at $.cost.verify: unknown key");
  EXPECT_NE(error_of(R"({"cost": {"verify_ms": -1}})").find("$.cost.verify_ms"),
            std::string::npos);
  EXPECT_EQ(error_of(R"({"topology": {"region": 2}})"),
            "config error at $.topology.region: unknown key");
  EXPECT_NE(error_of(R"({"topology": {"regions": 0}})")
                .find("$.topology.regions"),
            std::string::npos);
}

TEST(StrictConfigTest, FaultSectionErrorsCarryFullPath) {
  EXPECT_EQ(error_of(R"({"faults": {"crashs": []}})"),
            "config error at $.faults.crashs: unknown key");
  EXPECT_NE(error_of(R"({"faults": {"corruption": {"rate": 2}}})")
                .find("$.faults.corruption.rate"),
            std::string::npos);
  EXPECT_NE(
      error_of(
          R"({"faults": {"clock": {"max_skew_ms": 1, "max_drift": 0.9}}})")
          .find("$.faults.clock.max_drift"),
      std::string::npos);
}

TEST(StrictConfigTest, FaultNodeRangeCheckedAgainstN) {
  // Structural parse succeeds; validate() then catches the out-of-range
  // node index against the run's n.
  EXPECT_NE(
      error_of(
          R"({"n": 4, "faults": {"crashes":
              [{"node": 9, "at_ms": 0, "duration_ms": 10}]}})")
          .find("$.faults.crashes[0].node"),
      std::string::npos);
}

TEST(SimConfigTest, FaultsRoundTripThroughConfigJson) {
  SimConfig cfg;
  cfg.faults.crashes.push_back({1, 100.0, 50.0});
  cfg.faults.corruption = {0.1, 0.0, 500.0};
  const SimConfig back = SimConfig::from_json(cfg.to_json());
  ASSERT_EQ(back.faults.crashes.size(), 1u);
  EXPECT_EQ(back.faults.crashes[0].node, 1u);
  EXPECT_DOUBLE_EQ(back.faults.corruption.rate, 0.1);
  EXPECT_TRUE(back.faults.enabled());
}

TEST(EngineConfigTest, DefaultsAreSerialAndOmittedFromJson) {
  const SimConfig cfg;
  EXPECT_EQ(cfg.engine.intra_jobs, 1u);
  EXPECT_EQ(cfg.engine.rng, EngineConfig::RngMode::kAuto);
  EXPECT_FALSE(cfg.engine.per_node_rng());
  EXPECT_FALSE(cfg.engine.active());
  // Inactive engine sections stay out of the emitted JSON so pre-existing
  // configs round-trip byte-identically.
  EXPECT_EQ(cfg.to_json().as_object().find("engine"), nullptr);
}

TEST(EngineConfigTest, RoundTripsThroughConfigJson) {
  SimConfig cfg;
  cfg.engine.intra_jobs = 8;
  cfg.engine.rng = EngineConfig::RngMode::kPerNode;
  const SimConfig back = SimConfig::from_json(cfg.to_json());
  EXPECT_EQ(back.engine.intra_jobs, 8u);
  EXPECT_EQ(back.engine.rng, EngineConfig::RngMode::kPerNode);
  EXPECT_TRUE(back.engine.per_node_rng());
}

TEST(EngineConfigTest, AutoModeSelectsPerNodeRngOnlyWhenParallel) {
  EngineConfig engine;
  engine.intra_jobs = 2;
  EXPECT_TRUE(engine.per_node_rng());
  engine.rng = EngineConfig::RngMode::kStream;
  EXPECT_FALSE(engine.per_node_rng());
}

TEST(StrictEngineConfigTest, UnknownKeysAndModesNamePath) {
  EXPECT_EQ(error_of(R"({"engine": {"intra_job": 2}})"),
            "config error at $.engine.intra_job: unknown key");
  EXPECT_NE(error_of(R"({"engine": {"rng": "shared"}})").find("$.engine.rng"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"engine": {"intra_jobs": 0}})")
                .find("$.engine.intra_jobs"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"engine": {"intra_jobs": 129}})")
                .find("$.engine.intra_jobs"),
            std::string::npos);
}

TEST(StrictEngineConfigTest, StreamRngIsSerialOnly) {
  EXPECT_NE(
      error_of(R"({"engine": {"intra_jobs": 2, "rng": "stream"}})")
          .find("serial-only"),
      std::string::npos);
  EXPECT_EQ(error_of(R"({"engine": {"intra_jobs": 1, "rng": "stream"}})"), "");
}

TEST(StrictEngineConfigTest, WindowedModeExcludesTimelineButNotAttacks) {
  // Attack + parallel engine is no longer a config error: the controller
  // deterministically falls back to the serial engine for such runs and
  // records an "engine-serial-fallback" warning on the RunResult (see
  // tests/sim/serial_fallback_test.cpp), so sweeps with a global
  // engine.intra_jobs survive their attack points.
  EXPECT_EQ(error_of(R"({"engine": {"intra_jobs": 4},
                          "attack": "partition"})"),
            "");
  EXPECT_EQ(error_of(R"({"engine": {"rng": "per_node"},
                          "attack": "partition"})"),
            "");
  EXPECT_NE(error_of(R"({"engine": {"intra_jobs": 4},
                          "obs": {"timeline_tick_ms": 100}})")
                .find("timeline"),
            std::string::npos);
  // Serial engine + attack stays valid, as before.
  EXPECT_EQ(error_of(R"({"attack": "partition"})"), "");
}

TEST(SimConfigTest, FromFile) {
  const std::string path = ::testing::TempDir() + "/bftsim_config_test.json";
  {
    std::ofstream out(path);
    out << R"({"protocol": "librabft", "n": 8, "lambda_ms": 750,)"
        << R"( "delay": {"kind": "exponential", "a": 200}})";
  }
  const SimConfig cfg = SimConfig::from_file(path);
  EXPECT_EQ(cfg.protocol, "librabft");
  EXPECT_EQ(cfg.n, 8u);
  EXPECT_DOUBLE_EQ(cfg.lambda_ms, 750.0);
  EXPECT_EQ(cfg.delay.kind, DelaySpec::Kind::kExponential);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bftsim

#include "core/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.hpp"

namespace bftsim {
namespace {

TimerFire timer(NodeId node, std::uint64_t tag = 0) {
  return TimerFire{TimerOwner::kNode, node, 0, tag};
}

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.total_scheduled(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  queue.push(30, timer(3));
  queue.push(10, timer(1));
  queue.push(20, timer(2));
  EXPECT_EQ(queue.pop().at, 10);
  EXPECT_EQ(queue.pop().at, 20);
  EXPECT_EQ(queue.pop().at, 30);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue queue;
  for (NodeId i = 0; i < 10; ++i) queue.push(5, timer(i));
  for (NodeId i = 0; i < 10; ++i) {
    const Event ev = queue.pop();
    EXPECT_EQ(std::get<TimerFire>(ev.body).node, i);
  }
}

TEST(EventQueueTest, NextTimeMatchesTopElement) {
  EventQueue queue;
  queue.push(100, timer(0));
  queue.push(50, timer(1));
  EXPECT_EQ(queue.next_time(), 50);
  (void)queue.pop();
  EXPECT_EQ(queue.next_time(), 100);
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue queue;
  queue.push(10, timer(0));
  queue.push(30, timer(1));
  EXPECT_EQ(queue.pop().at, 10);
  queue.push(20, timer(2));
  EXPECT_EQ(queue.pop().at, 20);
  EXPECT_EQ(queue.pop().at, 30);
}

TEST(EventQueueTest, TotalScheduledCountsEverything) {
  EventQueue queue;
  for (int i = 0; i < 7; ++i) queue.push(i, timer(0));
  while (!queue.empty()) (void)queue.pop();
  EXPECT_EQ(queue.total_scheduled(), 7u);
}

TEST(EventQueueTest, CarriesMessageEvents) {
  EventQueue queue;
  queue.push(42, MessageDelivery{/*env=*/7, /*dst=*/2});
  const Event ev = queue.pop();
  const auto& delivery = std::get<MessageDelivery>(ev.body);
  EXPECT_EQ(delivery.env, 7u);
  EXPECT_EQ(delivery.dst, 2u);
}

TEST(EventQueueTest, CancelTombstonesOnlyPendingTimers) {
  EventQueue queue;
  queue.push(10, TimerFire{TimerOwner::kNode, 0, /*timer=*/5, 0});
  EXPECT_EQ(queue.pending_timer_count(), 1u);

  // Never-scheduled id: rejected, no tombstone.
  EXPECT_FALSE(queue.cancel_timer(99));
  EXPECT_EQ(queue.tombstone_count(), 0u);

  // Pending id: tombstoned exactly once.
  EXPECT_TRUE(queue.cancel_timer(5));
  EXPECT_FALSE(queue.cancel_timer(5));  // double-cancel is a no-op
  EXPECT_EQ(queue.tombstone_count(), 1u);
  EXPECT_EQ(queue.pending_timer_count(), 0u);

  // The fire event still pops (lazy deletion), and the dispatcher's
  // consume call retires the tombstone.
  const Event ev = queue.pop();
  EXPECT_TRUE(queue.consume_cancellation(std::get<TimerFire>(ev.body).timer));
  EXPECT_FALSE(queue.consume_cancellation(5));
  EXPECT_EQ(queue.tombstone_count(), 0u);
}

TEST(EventQueueTest, CancelAfterFireLeavesNoTombstone) {
  EventQueue queue;
  queue.push(10, TimerFire{TimerOwner::kNode, 0, /*timer=*/7, 0});
  const Event ev = queue.pop();
  EXPECT_FALSE(queue.consume_cancellation(std::get<TimerFire>(ev.body).timer));
  // The timer already fired; a late cancel must not leak a tombstone that
  // no future pop would ever consume.
  EXPECT_FALSE(queue.cancel_timer(7));
  EXPECT_EQ(queue.tombstone_count(), 0u);
  EXPECT_EQ(queue.pending_timer_count(), 0u);
}

TEST(EventQueueTest, TimerChurnKeepsBookkeepingBounded) {
  // The pacemaker pattern: a steady pool of armed timeouts where rounds
  // keep cancelling some and re-arming others. Pre-overhaul, every
  // cancellation left a controller-side tombstone that nothing retired,
  // so a long-churning run accumulated them without bound. Now both sets
  // must stay bounded by the number of timers actually in the queue.
  EventQueue queue;
  Rng rng{2024};
  TimerId next_id = 1;
  Time clock = 0;
  constexpr std::size_t kDepth = 8;
  std::vector<TimerId> live;  // armed and not cancelled, per the test
  for (std::size_t i = 0; i < kDepth; ++i) {
    const TimerId id = next_id++;
    queue.push(clock + 1 + static_cast<Time>(i),
               TimerFire{TimerOwner::kNode, 0, id, 0});
    live.push_back(id);
  }
  for (int round = 0; round < 5'000; ++round) {
    if (round % 3 == 0 && !live.empty()) {
      EXPECT_TRUE(queue.cancel_timer(live.front()));
      live.erase(live.begin());
    }
    const Event ev = queue.pop();
    clock = ev.at;
    const TimerId fired = std::get<TimerFire>(ev.body).timer;
    const bool was_cancelled = queue.consume_cancellation(fired);
    const auto it = std::find(live.begin(), live.end(), fired);
    EXPECT_EQ(was_cancelled, it == live.end());
    if (it != live.end()) live.erase(it);
    const TimerId id = next_id++;
    queue.push(clock + 1 + static_cast<Time>(rng.next_below(16)),
               TimerFire{TimerOwner::kNode, 0, id, 0});
    live.push_back(id);
    ASSERT_EQ(queue.size(), kDepth) << "round " << round;
    ASSERT_LE(queue.tombstone_count(), kDepth) << "round " << round;
    ASSERT_EQ(queue.pending_timer_count() + queue.tombstone_count(),
              queue.size())
        << "round " << round;
  }
  // Draining the queue retires every remaining tombstone.
  while (!queue.empty()) {
    const Event ev = queue.pop();
    (void)queue.consume_cancellation(std::get<TimerFire>(ev.body).timer);
  }
  EXPECT_EQ(queue.tombstone_count(), 0u);
  EXPECT_EQ(queue.pending_timer_count(), 0u);
}

class EventQueuePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueuePropertyTest, RandomSchedulesPopSorted) {
  Rng rng{GetParam()};
  EventQueue queue;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    queue.push(static_cast<Time>(rng.next_below(1000)), timer(0));
  }
  Time prev = -1;
  std::uint64_t prev_seq = 0;
  bool first = true;
  for (int i = 0; i < n; ++i) {
    const Event ev = queue.pop();
    EXPECT_GE(ev.at, prev);
    if (!first && ev.at == prev) {
      EXPECT_GT(ev.seq, prev_seq);  // stable ties
    }
    prev = ev.at;
    prev_seq = ev.seq;
    first = false;
  }
  EXPECT_TRUE(queue.empty());
}

TEST_P(EventQueuePropertyTest, MixedPushPopNeverGoesBackInTime) {
  // Simulates the controller's usage: pops advance the clock, pushes only
  // schedule at or after the current clock.
  Rng rng{GetParam() ^ 0x5555};
  EventQueue queue;
  queue.push(0, timer(0));
  Time clock = 0;
  for (int i = 0; i < 3000 && !queue.empty(); ++i) {
    const Event ev = queue.pop();
    EXPECT_GE(ev.at, clock);
    clock = ev.at;
    if (rng.next_below(100) < 60) {
      queue.push(clock + static_cast<Time>(rng.next_below(50)), timer(0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueuePropertyTest,
                         ::testing::Values(1, 7, 99, 1234));

}  // namespace
}  // namespace bftsim

#include "core/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"

namespace bftsim {
namespace {

TimerFire timer(NodeId node, std::uint64_t tag = 0) {
  return TimerFire{TimerOwner::kNode, node, 0, tag};
}

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.total_scheduled(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  queue.push(30, timer(3));
  queue.push(10, timer(1));
  queue.push(20, timer(2));
  EXPECT_EQ(queue.pop().at, 10);
  EXPECT_EQ(queue.pop().at, 20);
  EXPECT_EQ(queue.pop().at, 30);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue queue;
  for (NodeId i = 0; i < 10; ++i) queue.push(5, timer(i));
  for (NodeId i = 0; i < 10; ++i) {
    const Event ev = queue.pop();
    EXPECT_EQ(std::get<TimerFire>(ev.body).node, i);
  }
}

TEST(EventQueueTest, NextTimeMatchesTopElement) {
  EventQueue queue;
  queue.push(100, timer(0));
  queue.push(50, timer(1));
  EXPECT_EQ(queue.next_time(), 50);
  (void)queue.pop();
  EXPECT_EQ(queue.next_time(), 100);
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue queue;
  queue.push(10, timer(0));
  queue.push(30, timer(1));
  EXPECT_EQ(queue.pop().at, 10);
  queue.push(20, timer(2));
  EXPECT_EQ(queue.pop().at, 20);
  EXPECT_EQ(queue.pop().at, 30);
}

TEST(EventQueueTest, TotalScheduledCountsEverything) {
  EventQueue queue;
  for (int i = 0; i < 7; ++i) queue.push(i, timer(0));
  while (!queue.empty()) (void)queue.pop();
  EXPECT_EQ(queue.total_scheduled(), 7u);
}

TEST(EventQueueTest, CarriesMessageEvents) {
  EventQueue queue;
  Message msg;
  msg.src = 1;
  msg.dst = 2;
  queue.push(42, MessageDelivery{msg});
  const Event ev = queue.pop();
  const auto& delivery = std::get<MessageDelivery>(ev.body);
  EXPECT_EQ(delivery.msg.src, 1u);
  EXPECT_EQ(delivery.msg.dst, 2u);
}

class EventQueuePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueuePropertyTest, RandomSchedulesPopSorted) {
  Rng rng{GetParam()};
  EventQueue queue;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    queue.push(static_cast<Time>(rng.next_below(1000)), timer(0));
  }
  Time prev = -1;
  std::uint64_t prev_seq = 0;
  bool first = true;
  for (int i = 0; i < n; ++i) {
    const Event ev = queue.pop();
    EXPECT_GE(ev.at, prev);
    if (!first && ev.at == prev) EXPECT_GT(ev.seq, prev_seq);  // stable ties
    prev = ev.at;
    prev_seq = ev.seq;
    first = false;
  }
  EXPECT_TRUE(queue.empty());
}

TEST_P(EventQueuePropertyTest, MixedPushPopNeverGoesBackInTime) {
  // Simulates the controller's usage: pops advance the clock, pushes only
  // schedule at or after the current clock.
  Rng rng{GetParam() ^ 0x5555};
  EventQueue queue;
  queue.push(0, timer(0));
  Time clock = 0;
  for (int i = 0; i < 3000 && !queue.empty(); ++i) {
    const Event ev = queue.pop();
    EXPECT_GE(ev.at, clock);
    clock = ev.at;
    if (rng.next_below(100) < 60) {
      queue.push(clock + static_cast<Time>(rng.next_below(50)), timer(0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueuePropertyTest,
                         ::testing::Values(1, 7, 99, 1234));

}  // namespace
}  // namespace bftsim

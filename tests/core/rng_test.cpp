#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace bftsim {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng{7};
  const std::uint64_t first = rng.next_u64();
  (void)rng.next_u64();
  rng.reseed(7);
  EXPECT_EQ(rng.next_u64(), first);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng{11};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng{5};
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.next_below(10)];
  for (int count : seen) EXPECT_GT(count, 800);  // each bucket near 1000
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng{9};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(100.0, 200.0);
    EXPECT_GE(x, 100.0);
    EXPECT_LT(x, 200.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng{13};
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(250.0, 50.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 250.0, 1.0);
  EXPECT_NEAR(std::sqrt(var), 50.0, 1.0);
}

TEST(RngTest, ExponentialMoments) {
  Rng rng{17};
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent{21};
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.next_u64() == child_b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a{33};
  Rng b{33};
  Rng fa = a.fork(5);
  Rng fb = b.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(RngTest, SplitMixKnownGoodDistribution) {
  // SplitMix64 must expand even pathological seeds (0, 1, 2, ...) into
  // well-spread states: successive seeds must not correlate outputs.
  Rng a{0};
  Rng b{1};
  EXPECT_NE(a.next_u64(), b.next_u64());
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, BooleanBalance) {
  Rng rng{GetParam()};
  int heads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) heads += rng.next_bool() ? 1 : 0;
  EXPECT_NEAR(heads, n / 2, 300);
}

TEST_P(RngSeedSweep, NormalIsSymmetricAroundMean) {
  Rng rng{GetParam()};
  int above = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) above += rng.normal(0.0, 1.0) > 0.0 ? 1 : 0;
  EXPECT_NEAR(above, n / 2, 400);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 42, 12345, 0xdeadbeef));

}  // namespace
}  // namespace bftsim

#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bftsim {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersIsTreatedAsOne) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsTheQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // No wait_idle: the destructor must finish the queued work before
    // joining (join semantics).
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool{2};
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForPreservesResultOrdering) {
  // Each task writes to its own slot; the output must be in index order
  // regardless of which worker ran which task.
  ThreadPool pool{4};
  std::vector<std::size_t> out(100, 0);
  parallel_for(pool, out.size(), [&out](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, ParallelForZeroCountIsANoop) {
  ThreadPool pool{2};
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool{4};
  EXPECT_THROW(
      parallel_for(pool, 16,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("task 7 failed");
                   }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRethrowsTheLowestIndexError) {
  // Deterministic choice among concurrent failures: index order, not
  // completion order.
  ThreadPool pool{4};
  try {
    parallel_for(pool, 16, [](std::size_t i) {
      if (i % 5 == 3) throw std::runtime_error("idx=" + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "idx=3");
  }
}

TEST(ThreadPoolTest, ParallelForFinishesRemainingTasksAfterAFailure) {
  ThreadPool pool{4};
  std::atomic<int> completed{0};
  try {
    parallel_for(pool, 32, [&completed](std::size_t i) {
      if (i == 0) throw std::runtime_error("early failure");
      completed.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
    // parallel_for only returns (and rethrows) once every task ran.
    EXPECT_EQ(completed.load(), 31);
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossParallelForCalls) {
  ThreadPool pool{3};
  std::vector<int> a(10, 0), b(10, 0);
  parallel_for(pool, a.size(), [&a](std::size_t i) { a[i] = 1; });
  parallel_for(pool, b.size(), [&b](std::size_t i) { b[i] = 2; });
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 10);
  EXPECT_EQ(std::accumulate(b.begin(), b.end(), 0), 20);
}

TEST(ThreadPoolTest, SubmittedTaskExceptionIsRethrownAtWaitIdle) {
  // A throwing task must not terminate the worker (or the process); the
  // exception surfaces at the aggregation point instead.
  ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error("task blew up"); });
  try {
    pool.wait_idle();
    FAIL() << "expected wait_idle to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task blew up");
  }
}

TEST(ThreadPoolTest, PoolSurvivesAThrowingTask) {
  ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);

  // The worker that ran the throwing task is still alive and the error
  // state was cleared: later batches run and wait cleanly.
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, OnlyFirstTaskErrorIsKept) {
  ThreadPool pool{1};  // single worker: deterministic execution order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected wait_idle to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  pool.wait_idle();  // error consumed; pool is idle and clean
}

TEST(ThreadPoolTest, SuppressedFailureCountIsReported) {
  ThreadPool pool{1};  // single worker: deterministic execution order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  pool.submit([] { throw std::runtime_error("third"); });
  try {
    pool.wait_idle();
    FAIL() << "expected wait_idle to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");  // the original exception, unchanged
  }
  // The two exceptions discarded alongside "first" are accounted for.
  EXPECT_EQ(pool.last_suppressed_failures(), 2u);

  // A clean wait resets the report.
  pool.wait_idle();
  EXPECT_EQ(pool.last_suppressed_failures(), 0u);
}

TEST(ThreadPoolTest, SingleFailureSuppressesNothing) {
  ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error("only"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(pool.last_suppressed_failures(), 0u);
}

TEST(ThreadPoolTest, SuppressedCountResetsBetweenBatches) {
  ThreadPool pool{1};
  pool.submit([] { throw std::runtime_error("a"); });
  pool.submit([] { throw std::runtime_error("b"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(pool.last_suppressed_failures(), 1u);

  // The next failing batch starts counting from zero.
  pool.submit([] { throw std::runtime_error("c"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(pool.last_suppressed_failures(), 0u);
}

TEST(ThreadPoolTest, DestructorSwallowsPendingTaskError) {
  // A stored error with no wait_idle call must not escape the destructor.
  ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error("never observed"); });
}

TEST(ThreadPoolTest, SubmitBatchRunsEveryTask) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> batch;
  for (int i = 0; i < 200; ++i) {
    batch.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.submit_batch(std::move(batch));
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SubmitBatchEmptyIsANoop) {
  ThreadPool pool{2};
  pool.submit_batch({});
  pool.wait_idle();
}

TEST(ThreadPoolTest, SubmitBatchInterleavesWithSubmit) {
  // Barrier-cadenced batches (the windowed engine's usage) reuse the same
  // queue as single submissions; every task from both paths must run.
  ThreadPool pool{3};
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    std::vector<std::function<void()>> batch;
    for (int i = 0; i < 3; ++i) {
      batch.push_back([&counter] { counter.fetch_add(1); });
    }
    pool.submit_batch(std::move(batch));
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SubmitBatchExceptionSurfacesAtWaitIdle) {
  ThreadPool pool{2};
  std::vector<std::function<void()>> batch;
  batch.push_back([] { throw std::runtime_error("batch boom"); });
  pool.submit_batch(std::move(batch));
  try {
    pool.wait_idle();
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "batch boom");
  }
}

TEST(ThreadPoolTest, DefaultWorkersHonorsEnvOverride) {
  ASSERT_EQ(setenv("BFTSIM_JOBS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::default_workers(), 3u);
  ASSERT_EQ(unsetenv("BFTSIM_JOBS"), 0);
  EXPECT_GE(ThreadPool::default_workers(), 1u);
}

}  // namespace
}  // namespace bftsim

// Unit and property tests for the flat 4-ary min-heap backing EventQueue.
#include "core/dary_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "core/event.hpp"

namespace bftsim {
namespace {

TEST(DaryHeapTest, StartsEmpty) {
  DaryHeap<int> heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
}

TEST(DaryHeapTest, PopsAscending) {
  DaryHeap<int> heap;
  for (const int v : {5, 1, 4, 1, 5, 9, 2, 6}) heap.push(v);
  std::vector<int> popped;
  while (!heap.empty()) popped.push_back(heap.pop());
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
  EXPECT_EQ(popped.size(), 8u);
}

TEST(DaryHeapTest, TopMatchesNextPop) {
  DaryHeap<int> heap;
  for (const int v : {42, 7, 19, 3, 88}) heap.push(v);
  while (!heap.empty()) {
    const int expected = heap.top();
    EXPECT_EQ(heap.pop(), expected);
  }
}

TEST(DaryHeapTest, ReserveSetsCapacityWithoutChangingSize) {
  DaryHeap<int> heap;
  heap.reserve(1024);
  EXPECT_GE(heap.capacity(), 1024u);
  EXPECT_TRUE(heap.empty());
  heap.push(1);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(DaryHeapTest, ClearEmptiesTheHeap) {
  DaryHeap<int> heap;
  for (int i = 0; i < 10; ++i) heap.push(i);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  heap.push(3);
  EXPECT_EQ(heap.pop(), 3);
}

// Satellite 1: pop() must move the body out, never copy it — event bodies
// carry shared_ptr payloads whose refcounts the hot loop must not churn.
// A move-only element type makes any accidental copy a compile error, and
// the interleaved push/pop churn exercises every sift path under it.
TEST(DaryHeapTest, WorksWithMoveOnlyElements) {
  struct MoveOnlyLess {
    bool operator()(const std::unique_ptr<int>& a,
                    const std::unique_ptr<int>& b) const {
      return *a < *b;
    }
  };
  DaryHeap<std::unique_ptr<int>, 4, MoveOnlyLess> heap;
  std::mt19937_64 rng(7);
  std::vector<int> expected;
  for (int i = 0; i < 200; ++i) {
    const int v = static_cast<int>(rng() % 1000);
    expected.push_back(v);
    heap.push(std::make_unique<int>(v));
    if (i % 3 == 2) {
      std::unique_ptr<int> out = heap.pop();
      auto it = std::min_element(expected.begin(), expected.end());
      EXPECT_EQ(*out, *it);
      expected.erase(it);
    }
  }
  std::sort(expected.begin(), expected.end());
  for (const int v : expected) EXPECT_EQ(*heap.pop(), v);
  EXPECT_TRUE(heap.empty());
}

// Property: over 10k randomized events with heavy timestamp ties, the pop
// sequence equals the (time, seq) sorted order — the heap layout must be
// unobservable. This is the contract that lets the engine swap heap
// implementations without changing simulation results.
TEST(DaryHeapProperty, TenThousandRandomEventsPopSorted) {
  struct Earlier {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };
  for (const std::uint64_t seed : {1ULL, 7ULL, 99ULL, 1234ULL}) {
    DaryHeap<Event, 4, Earlier> heap;
    std::mt19937_64 rng(seed);
    std::vector<std::pair<Time, std::uint64_t>> reference;
    for (std::uint64_t seq = 0; seq < 10'000; ++seq) {
      // Only 64 distinct timestamps, so ties are everywhere.
      const Time at = static_cast<Time>(rng() % 64);
      reference.emplace_back(at, seq);
      heap.push(Event{at, seq, TimerFire{}});
    }
    std::sort(reference.begin(), reference.end());
    for (const auto& [at, seq] : reference) {
      ASSERT_FALSE(heap.empty());
      const Event ev = heap.pop();
      ASSERT_EQ(ev.at, at) << "seed " << seed;
      ASSERT_EQ(ev.seq, seq) << "seed " << seed;
    }
    EXPECT_TRUE(heap.empty());
  }
}

// Same property under interleaved push/pop (the simulator's actual access
// pattern: pops constantly interleave with pushes of later events).
TEST(DaryHeapProperty, InterleavedChurnMatchesReference) {
  struct Earlier {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };
  DaryHeap<Event, 4, Earlier> heap;
  std::mt19937_64 rng(42);
  std::vector<std::pair<Time, std::uint64_t>> pending;
  std::uint64_t seq = 0;
  Time clock = 0;
  for (int round = 0; round < 5'000; ++round) {
    // Push 0-3 events at or after the current clock, then pop one.
    const int pushes = static_cast<int>(rng() % 4);
    for (int i = 0; i < pushes; ++i) {
      const Time at = clock + static_cast<Time>(rng() % 16);
      pending.emplace_back(at, seq);
      heap.push(Event{at, seq, TimerFire{}});
      ++seq;
    }
    if (heap.empty()) continue;
    auto it = std::min_element(pending.begin(), pending.end());
    const Event ev = heap.pop();
    ASSERT_EQ(ev.at, it->first);
    ASSERT_EQ(ev.seq, it->second);
    clock = ev.at;
    pending.erase(it);
  }
}

}  // namespace
}  // namespace bftsim

// Fig. 5: partially-synchronous protocols when λ underestimates the real
// delay (N(250, 50)). Expected: LibraBFT flat (message-driven view
// synchronization); PBFT worst at λ = 150 and flat from ~250 up;
// HotStuff+NS degraded and with inflated variance / timer churn at small λ
// (its naive synchronizer burns timeouts; see also Fig. 9).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::Report report{"fig5_underestimate", args};

  const std::vector<double> lambdas{150, 250, 500, 1000};
  const std::vector<std::string> protocols{"pbft", "hotstuff-ns", "librabft"};

  std::vector<std::string> headers{"protocol"};
  for (const double lambda : lambdas) {
    headers.push_back("λ=" + std::to_string(static_cast<int>(lambda)));
  }

  bench::print_title("Fig. 5 — latency when the timeout is underestimated",
                     "n=16, delay=N(250,50), " + std::to_string(args.repeats) +
                         " runs per cell (mean±std seconds per decision)");
  Table table{headers, 15};
  table.print_header(std::cout);

  std::vector<std::vector<Aggregate>> all;
  for (const std::string& protocol : protocols) {
    std::vector<std::string> cells{protocol};
    std::vector<Aggregate> row;
    for (const double lambda : lambdas) {
      SimConfig cfg =
          experiment_config(protocol, 16, lambda, DelaySpec::normal(250, 50));
      const std::string label =
          protocol + "/lambda=" + std::to_string(static_cast<int>(lambda));
      row.push_back(report.measure(label, cfg));
      cells.push_back(bench::latency_cell(row.back()));
    }
    all.push_back(std::move(row));
    table.print_row(std::cout, cells);
  }

  bench::print_title("Fig. 5 (companion) — timeout churn (timers fired per run)",
                     "the naive synchronizer's instability shows as timer churn");
  table.print_header(std::cout);
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    std::vector<std::string> cells{protocols[p]};
    for (const Aggregate& agg : all[p]) {
      cells.push_back(Table::cell(agg.messages.count > 0 ? agg.events.mean : 0.0, ""));
    }
    table.print_row(std::cout, cells);
  }
  report.write();
  return 0;
}

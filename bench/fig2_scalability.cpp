// Fig. 2: simulation wall-clock time for one PBFT decision, our
// message-level engine vs. the packet-level ("BFTSim-like") baseline,
// as the node count grows (λ = 1000, delays ~ N(250, 50)).
//
// The paper reports 38 ms vs 19.4 s at 32 nodes (and BFTSim running out of
// memory beyond 32 nodes). Our baseline is a from-scratch reproduction of
// the packet-level mechanism (DESIGN.md substitution #1); absolute ratios
// differ from the dead ns-2 stack, the shape — orders of magnitude apart
// and growing with n — is the reproduced claim.
#include "baseline/baseline.hpp"
#include "bench_common.hpp"
#include "sim/simulation.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;
  const bench::BenchArgs args = bench::parse_args(argc, argv, 3);
  const std::size_t repeats = args.repeats;
  bench::Report report{"fig2_scalability", args};

  bench::print_title("Fig. 2 — simulation time, PBFT, ours vs packet-level baseline",
                     "lambda=1000ms, delay=N(250,50), 1 decision, " +
                         std::to_string(repeats) + " repeats");

  Table table{{"n", "ours (ms)", "events", "baseline (ms)", "events", "ratio"}, 15};
  table.print_header(std::cout);

  for (const std::uint32_t n : {4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    SimConfig cfg;
    cfg.protocol = "pbft";
    cfg.n = n;
    cfg.lambda_ms = 1000;
    cfg.delay = DelaySpec::normal(250, 50);
    cfg.decisions = 1;
    cfg.seed = 1;

    const Aggregate ours = report.measure("ours/n=" + std::to_string(n), cfg);
    // Per-run wall time stays meaningful under --jobs > 1: each run is
    // timed individually inside its worker.
    const double ours_ms =
        ours.wall_seconds_total / static_cast<double>(repeats) * 1e3;
    const double ours_events = ours.events.mean;

    // The packet-level engine becomes impractical quickly; mirror the
    // paper's observation by capping it at 64 nodes. It bypasses the
    // runner (different engine), so it is measured with a plain loop.
    std::string baseline_ms = "n/a";
    std::string baseline_events = "n/a";
    std::string ratio = "n/a";
    if (n <= 64) {
      double slow_ms = 0.0;
      double slow_events = 0.0;
      for (std::size_t i = 0; i < repeats; ++i) {
        cfg.seed = 1 + i;
        const RunResult r = baseline::run_baseline_simulation(cfg);
        slow_ms += r.wall_seconds * 1e3;
        slow_events += static_cast<double>(r.events_processed);
      }
      slow_ms /= static_cast<double>(repeats);
      slow_events /= static_cast<double>(repeats);
      baseline_ms = Table::cell(slow_ms, "");
      baseline_events = Table::cell(slow_events, "");
      ratio = Table::cell(slow_ms / ours_ms, "x");

      json::Object extra;
      extra["label"] = "baseline/n=" + std::to_string(n);
      extra["engine"] = "packet-level";
      extra["repeats"] = static_cast<std::int64_t>(repeats);
      extra["mean_wall_ms"] = slow_ms;
      extra["mean_events"] = slow_events;
      report.add_value(json::Value{std::move(extra)});
    }

    table.print_row(std::cout,
                    {std::to_string(n), Table::cell(ours_ms, ""),
                     Table::cell(ours_events, ""), baseline_ms, baseline_events,
                     ratio});
  }
  std::printf("\n(baseline capped at 64 nodes, as BFTSim capped at 32)\n");
  report.write();
  return 0;
}

// Fig. 8: latency of the three ADD+ variants under (left) a static
// attacker and (right) a rushing adaptive attacker (n = 16, so f = 7).
// Expected:
//   left  — v1 collapses (the attacker fail-stops its first f round-robin
//           leaders: ~f extra iterations), v2/v3 unaffected (VRF leaders
//           are unpredictable to a static attacker);
//   right — v2 collapses (the adaptive attacker corrupts each winner the
//           moment its credential is revealed, before it proposes), v3
//           unaffected (credential and proposal travel together, and the
//           prepare round locks the value while the winner's messages are
//           already in flight).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t repeats = args.repeats;
  bench::Report report{"fig8_add_attacks", args};

  bench::print_title("Fig. 8 — ADD+ variants under static / rushing-adaptive attacks",
                     "n=16 (f=7), lambda=1000ms, delay=N(250,50), " +
                         std::to_string(repeats) +
                         " runs per cell (mean±std seconds to decide)");

  Table table{{"variant", "no attack", "static", "rushing adaptive"}, 20};
  table.print_header(std::cout);

  for (const std::string& variant : {std::string("addv1"), std::string("addv2"),
                                     std::string("addv3")}) {
    std::vector<std::string> cells{variant};
    for (const std::string& attack :
         {std::string(""), std::string("add-static"), std::string("add-adaptive")}) {
      SimConfig cfg =
          experiment_config(variant, 16, 1000, DelaySpec::normal(250, 50));
      cfg.attack = attack;
      cfg.max_time_ms = 600'000;
      const std::string label =
          variant + "/" + (attack.empty() ? "clean" : attack);
      cells.push_back(bench::latency_cell(report.measure(label, cfg)));
    }
    table.print_row(std::cout, cells);
  }
  report.write();
  return 0;
}

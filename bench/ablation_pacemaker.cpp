// Ablation: the pacemaker / view-synchronization design space.
//
// The same chained-HotStuff safety core runs under two pacemakers
// (HotStuff+NS: message-free exponential back-off; LibraBFT: timeout
// certificates), PBFT brings the classic view-change sub-protocol, and
// Tendermint the linearly growing round timeouts. This bench isolates the
// pacemaker's contribution by sweeping the two stresses that only a
// pacemaker can answer: a crashed-leader load and a healed partition.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;
  const bench::BenchArgs args = bench::parse_args(argc, argv, 30);
  const std::size_t repeats = args.repeats;
  bench::Report report{"ablation_pacemaker", args};
  const std::vector<std::string> protocols{"hotstuff-ns", "librabft", "pbft",
                                           "tendermint"};

  bench::print_title(
      "Ablation A — pacemakers under crashed leaders",
      "n=16, lambda=1000ms, delay=N(1000,300), seconds per decision, " +
          std::to_string(repeats) + " runs");
  Table table_a{{"protocol", "f=0", "f=2", "f=4"}, 16};
  table_a.print_header(std::cout);
  for (const std::string& protocol : protocols) {
    std::vector<std::string> cells{protocol};
    for (const std::uint32_t f : {0u, 2u, 4u}) {
      SimConfig cfg =
          experiment_config(protocol, 16, 1000, DelaySpec::normal(1000, 300));
      cfg.honest = 16 - f;
      const std::string label =
          "crashed-leaders/" + protocol + "/f=" + std::to_string(f);
      cells.push_back(bench::latency_cell(report.measure(label, cfg)));
    }
    table_a.print_row(std::cout, cells);
  }

  bench::print_title(
      "Ablation B — pacemakers after a healed partition",
      "n=16, lambda=1000ms, delay=N(250,50), drop partition resolves at 33s;"
      " seconds from resolution to the first decision");
  Table table_b{{"protocol", "recovery (s)", "timeouts"}, 16};
  table_b.print_header(std::cout);
  for (const std::string& protocol : protocols) {
    SimConfig cfg = experiment_config(protocol, 16, 1000, DelaySpec::normal(250, 50));
    cfg.decisions = 1;
    cfg.attack = "partition";
    json::Object params;
    params["resolve_ms"] = 33'000.0;
    params["mode"] = "drop";
    cfg.attack_params = json::Value{std::move(params)};
    const Aggregate agg = report.measure("healed-partition/" + protocol, cfg);
    table_b.print_row(
        std::cout,
        {protocol,
         agg.latency_ms.count > 0
             ? Table::cell(agg.latency_ms.mean / 1e3 - 33.0,
                           agg.latency_ms.stddev / 1e3, "")
             : "TIMEOUT",
         std::to_string(agg.timeouts)});
  }

  std::printf("\nReading guide: the certificate-driven pacemakers (LibraBFT,\n"
              "and Tendermint's per-round votes) absorb both stresses with\n"
              "bounded cost; the message-free back-off (HotStuff+NS) pays\n"
              "exponentially under both.\n");
  report.write();
  return 0;
}

// Fig. 9: each node's view during a HotStuff+NS execution with an
// underestimated timeout (λ = 150 ms, delays ~ N(250, 50)). The paper's
// figure colors each node's view over time; here the same data prints as
// a node × time matrix of view numbers, plus the view spread (max - min
// view across nodes) per time bucket — the spread being the quantitative
// signature of the view-synchronization problem (§IV-D).
#include <algorithm>
#include <map>

#include "bench_common.hpp"
#include "sim/simulation.hpp"

namespace {

void view_matrix(const bftsim::SimConfig& cfg, const bftsim::RunResult& result,
                 const std::string& title);

}  // namespace

int main(int argc, char** argv) {
  using namespace bftsim;
  // The positional argument is the seed here (this bench plots single
  // runs), not a repetition count; --json still exports both panels.
  const bench::BenchArgs args = bench::parse_args(argc, argv, 4);
  const std::uint64_t seed = args.repeats;
  bench::Report report{"fig9_view_trace", args};

  // Panel 1 — the paper's configuration: underestimated timeout.
  SimConfig cfg = experiment_config("hotstuff-ns", 16, 150,
                                    DelaySpec::normal(250, 50));
  cfg.seed = seed;
  cfg.record_views = true;
  cfg.max_time_ms = 600'000;
  const RunResult paper_run = run_simulation(cfg);
  report.add_single("paper", cfg, paper_run);
  view_matrix(cfg, paper_run,
              "Fig. 9 — per-node views, HotStuff+NS, λ=150, N(250,50)");

  // Panel 2 — stressed variant: fail-stopped leaders force timeouts, and
  // the naive synchronizer's exponential back-off produces long, visible
  // view-synchronization outages.
  SimConfig stressed = experiment_config("hotstuff-ns", 16, 1000,
                                         DelaySpec::normal(1000, 300));
  stressed.seed = seed;
  stressed.honest = 12;
  stressed.record_views = true;
  stressed.max_time_ms = 600'000;
  const RunResult stressed_run = run_simulation(stressed);
  report.add_single("stress", stressed, stressed_run);
  view_matrix(stressed, stressed_run,
              "Fig. 9 (stress) — HotStuff+NS, λ=1000, N(1000,300), 4 fail-stops");
  report.write();
  return 0;
}

namespace {

void view_matrix(const bftsim::SimConfig& cfg, const bftsim::RunResult& result,
                 const std::string& title) {
  using namespace bftsim;

  bench::print_title(title,
                     "seed=" + std::to_string(cfg.seed) + ", terminated=" +
                         (result.terminated ? "yes" : "no") + ", latency=" +
                         std::to_string(result.latency_ms() / 1e3) + "s");

  // Reconstruct each node's view as a step function, sampled per bucket.
  const Time end = result.terminated ? result.termination_time
                                     : from_ms(cfg.max_time_ms);
  const int buckets = 24;
  const Time step = std::max<Time>(end / buckets, 1);

  std::map<NodeId, std::vector<std::pair<Time, View>>> steps;
  for (const ViewRecord& v : result.views) steps[v.node].push_back({v.at, v.view});

  std::printf("%-6s", "node");
  for (int b = 0; b < buckets; ++b) {
    std::printf("%5.0fs", to_sec(static_cast<Time>(b) * step));
  }
  std::printf("\n");

  std::vector<View> spread_min(buckets, ~View{0});
  std::vector<View> spread_max(buckets, 0);
  for (NodeId node = 0; node < cfg.n; ++node) {
    const bool dead = std::find(result.failstopped.begin(),
                                result.failstopped.end(),
                                node) != result.failstopped.end();
    if (dead) {
      std::printf("%-6u  (fail-stopped)\n", node);
      continue;
    }
    std::printf("%-6u", node);
    const auto& timeline = steps[node];
    for (int b = 0; b < buckets; ++b) {
      const Time at = static_cast<Time>(b) * step;
      View view = 0;
      for (const auto& [t, v] : timeline) {
        if (t <= at) view = v;
      }
      spread_min[b] = std::min(spread_min[b], view);
      spread_max[b] = std::max(spread_max[b], view);
      std::printf("%6llu", static_cast<unsigned long long>(view));
    }
    std::printf("\n");
  }

  std::printf("%-6s", "spread");
  for (int b = 0; b < buckets; ++b) {
    std::printf("%6llu",
                static_cast<unsigned long long>(spread_max[b] - spread_min[b]));
  }
  std::printf("\n\n(spread = max view - min view: nonzero stretches are the\n"
              " view-synchronization outages of §IV-D)\n");
}

}  // namespace

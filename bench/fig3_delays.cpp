// Fig. 3: performance of all eight protocols across four network
// environments, from fast/stable to slow/unstable (λ = 1000 ms, n = 16).
//   (a) time usage  — expected: HotStuff+NS shortest except at
//       N(1000,1000), where PBFT edges it out;
//   (b) message usage — expected: HotStuff+NS fewest (linear),
//       async BA the outlier (n parallel reliable broadcasts).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::Report report{"fig3_delays", args};

  const std::vector<DelaySpec> environments{
      DelaySpec::normal(250, 50), DelaySpec::normal(500, 100),
      DelaySpec::normal(1000, 300), DelaySpec::normal(1000, 1000)};

  std::vector<std::string> headers{"protocol"};
  for (const DelaySpec& env : environments) headers.push_back(env.describe());

  bench::print_title("Fig. 3a — latency per decision across network environments",
                     "n=16, lambda=1000ms, " + std::to_string(args.repeats) +
                         " runs per cell (mean±std seconds; * = runs hit horizon)");
  Table table{headers, 16};
  table.print_header(std::cout);

  std::vector<std::vector<Aggregate>> results;
  for (const std::string& protocol : bench::all_protocols()) {
    std::vector<Aggregate> row;
    std::vector<std::string> cells{protocol};
    for (const DelaySpec& env : environments) {
      SimConfig cfg = experiment_config(protocol, 16, 1000, env);
      row.push_back(report.measure(protocol + "/" + env.describe(), cfg));
      cells.push_back(bench::latency_cell(row.back()));
    }
    results.push_back(std::move(row));
    table.print_row(std::cout, cells);
  }

  bench::print_title("Fig. 3b — messages per decision across network environments",
                     "(mean±std transmitted messages)");
  table.print_header(std::cout);
  for (std::size_t p = 0; p < bench::all_protocols().size(); ++p) {
    std::vector<std::string> cells{bench::all_protocols()[p]};
    for (const Aggregate& agg : results[p]) cells.push_back(bench::message_cell(agg));
    table.print_row(std::cout, cells);
  }
  report.write();
  return 0;
}

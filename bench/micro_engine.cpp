// Micro-benchmarks of the simulation engine (google-benchmark): event
// queue throughput, RNG sampling, and end-to-end runs per engine — the raw
// numbers behind the simulator's Fig. 2 speed.
#include <benchmark/benchmark.h>

#include "baseline/baseline.hpp"
#include "core/event_queue.hpp"
#include "core/rng.hpp"
#include "net/delay_model.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace bftsim;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  for (auto _ : state) {
    EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      queue.push(static_cast<Time>(rng.next_below(1'000'000)),
                 TimerFire{TimerOwner::kNode, 0, i, 0});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1'000)->Arg(100'000);

void BM_RngNormalSample(benchmark::State& state) {
  Rng rng{2};
  DelaySampler sampler{DelaySpec::normal(250, 50)};
  for (auto _ : state) benchmark::DoNotOptimize(sampler.sample(rng));
}
BENCHMARK(BM_RngNormalSample);

void BM_SimulatePbft(benchmark::State& state) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    cfg.seed = seed++;
    const RunResult result = run_simulation(cfg);
    events += result.events_processed;
    benchmark::DoNotOptimize(result.terminated);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("events/s");
}
BENCHMARK(BM_SimulatePbft)->Arg(16)->Arg(64)->Arg(256);

void BM_SimulateHotStuffTenDecisions(benchmark::State& state) {
  SimConfig cfg;
  cfg.protocol = "hotstuff-ns";
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.decisions = 10;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(run_simulation(cfg).terminated);
  }
}
BENCHMARK(BM_SimulateHotStuffTenDecisions);

void BM_SimulatePbftPacketLevel(benchmark::State& state) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(
        baseline::run_baseline_simulation(cfg).terminated);
  }
}
BENCHMARK(BM_SimulatePbftPacketLevel)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();

// Micro-benchmarks of the simulation engine (google-benchmark): event
// queue throughput, RNG sampling, and end-to-end runs per engine — the raw
// numbers behind the simulator's Fig. 2 speed — plus a serial-vs-parallel
// experiment-runner comparison and an n-scaling curve (events/sec and
// resident bytes/node at n up to 4096; see docs/SCALING.md), all written
// to a JSON file (default micro_engine.json; --json PATH to move, --jobs N
// to size the pool, --intra-jobs N to size the windowed-parallel driver,
// --skip-micro to run only the measurements, --skip-scaling to omit the
// curve, --skip-intra to omit the windowed intra-run speedup,
// --skip-attacker to omit the attacker-hook overhead record,
// --skip-wan to omit the WAN-backend vs direct-broadcast record,
// --skip-workload to omit the client-workload-generator record,
// --only-scaling to record just the curve). Every record carries the
// actual hardware thread count so bench_gate can refuse cross-machine
// comparisons.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "baseline/baseline.hpp"
#include "bench_common.hpp"
#include "core/event_queue.hpp"
#include "core/memstats.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "core/json.hpp"
#include "net/delay_model.hpp"
#include "net/wan/wan_spec.hpp"
#include "runner/export.hpp"
#include "runner/runner.hpp"
#include "sim/simulation.hpp"
#include "workload/workload_spec.hpp"

namespace {

using namespace bftsim;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  for (auto _ : state) {
    EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      queue.push(static_cast<Time>(rng.next_below(1'000'000)),
                 TimerFire{TimerOwner::kNode, 0, i, 0});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1'000)->Arg(100'000);

void BM_RngNormalSample(benchmark::State& state) {
  Rng rng{2};
  DelaySampler sampler{DelaySpec::normal(250, 50)};
  for (auto _ : state) benchmark::DoNotOptimize(sampler.sample(rng));
}
BENCHMARK(BM_RngNormalSample);

void BM_SimulatePbft(benchmark::State& state) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    cfg.seed = seed++;
    const RunResult result = run_simulation(cfg);
    events += result.events_processed;
    benchmark::DoNotOptimize(result.terminated);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("events/s");
}
BENCHMARK(BM_SimulatePbft)->Arg(16)->Arg(64)->Arg(256);

void BM_SimulateHotStuffTenDecisions(benchmark::State& state) {
  SimConfig cfg;
  cfg.protocol = "hotstuff-ns";
  cfg.n = 16;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.decisions = 10;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(run_simulation(cfg).terminated);
  }
}
BENCHMARK(BM_SimulateHotStuffTenDecisions);

void BM_SimulatePbftPacketLevel(benchmark::State& state) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(
        baseline::run_baseline_simulation(cfg).terminated);
  }
}
BENCHMARK(BM_SimulatePbftPacketLevel)->Arg(16)->Arg(32);

void BM_RunRepeatedParallel(benchmark::State& state) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 32;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_repeated_parallel(cfg, 16, jobs).runs);
  }
}
BENCHMARK(BM_RunRepeatedParallel)->Arg(1)->Arg(2)->Arg(4);

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Measures single-run engine throughput (events/sec) on fixed HotStuff
/// and PBFT workloads at n ∈ {16, 64, 128}. This is the series behind
/// BENCH_engine.json: run it before and after an engine change on the
/// same machine and compare events_per_sec per workload (the aggregates
/// must stay `equivalent()` — any difference is an ordering bug, not an
/// optimization).
json::Value measure_engine_throughput() {
  struct Workload {
    const char* protocol;
    std::uint32_t n;
    std::uint32_t decisions;
    std::size_t repeats;
  };
  // Repeats shrink with n so every row costs roughly the same wall time.
  // HotStuff (linear message complexity) runs 100 pipelined decisions per
  // run so the hot path dominates per-run setup; PBFT (quadratic) already
  // produces large event counts at 10.
  // Repeat counts keep every row at hundreds of ms so one timer tick or
  // scheduler hiccup cannot dominate the events/sec figure.
  const Workload workloads[] = {
      {"hotstuff-ns", 16, 100, 64}, {"hotstuff-ns", 64, 100, 32},
      {"hotstuff-ns", 128, 100, 16}, {"pbft", 16, 10, 96},
      {"pbft", 64, 10, 16},          {"pbft", 128, 10, 6},
  };

  std::printf("\n--- engine throughput (events/sec, serial run_repeated) ---\n");
  json::Array rows;
  for (const Workload& w : workloads) {
    SimConfig cfg;
    cfg.protocol = w.protocol;
    cfg.n = w.n;
    cfg.lambda_ms = 1000;
    cfg.delay = DelaySpec::normal(250, 50);
    cfg.decisions = w.decisions;
    cfg.seed = 1;

    (void)run_repeated(cfg, 1);  // warm-up outside the timed region
    const auto start = std::chrono::steady_clock::now();
    const Aggregate agg = run_repeated(cfg, w.repeats);
    const double seconds = seconds_since(start);

    const double events_total = agg.events.mean * static_cast<double>(agg.runs);
    const double events_per_sec = seconds > 0.0 ? events_total / seconds : 0.0;
    std::printf("%-12s n=%-4u %8.0f events in %6.3f s -> %12.0f events/s\n",
                w.protocol, w.n, events_total, seconds, events_per_sec);

    json::Object row;
    row["protocol"] = w.protocol;
    row["n"] = static_cast<std::int64_t>(w.n);
    row["decisions"] = static_cast<std::int64_t>(cfg.decisions);
    row["repeats"] = static_cast<std::int64_t>(w.repeats);
    row["events_total"] = events_total;
    row["wall_seconds"] = seconds;
    row["events_per_sec"] = events_per_sec;
    row["aggregate"] = aggregate_to_json(agg);
    rows.push_back(json::Value{std::move(row)});
  }
  return json::Value{std::move(rows)};
}

/// Measures the n-scaling curve: one single run per (protocol, n) point,
/// recording engine throughput (events/sec) and the per-node resident
/// memory cost. Memory attribution: trim the heap and take an RSS
/// baseline, reset the kernel's peak-RSS watermark, run, and charge the
/// peak-minus-baseline delta to the run (bytes_per_node = delta / n).
/// Decision counts shrink with n so every point costs bounded wall time —
/// PBFT's message complexity is quadratic, so one decision at n=4096 is
/// already ~28M events. Points run in increasing-footprint order so a big
/// point's freed-but-cached pages cannot pollute a smaller point's
/// baseline.
json::Value measure_scaling_curve() {
  struct Point {
    const char* protocol;
    std::uint32_t n;
    std::uint32_t decisions;
  };
  const Point points[] = {
      {"hotstuff-ns", 64, 100}, {"hotstuff-ns", 256, 50},
      {"hotstuff-ns", 1024, 20}, {"hotstuff-ns", 4096, 10},
      {"pbft", 64, 10},          {"pbft", 256, 4},
      {"pbft", 1024, 1},         {"pbft", 4096, 1},
  };

  std::printf("\n--- n-scaling curve (single run per point) ---\n");
  json::Array rows;
  for (const Point& p : points) {
    SimConfig cfg;
    cfg.protocol = p.protocol;
    cfg.n = p.n;
    cfg.lambda_ms = 1000;
    cfg.delay = DelaySpec::normal(250, 50);
    cfg.decisions = p.decisions;
    cfg.seed = 1;

    trim_heap();
    const std::size_t baseline_rss = current_rss_bytes();
    // When the watermark cannot be reset (locked-down /proc), fall back to
    // the post-run RSS: slightly below the true peak, but still a usable
    // per-point figure rather than a whole-process high-water mark.
    const bool peak_reset = reset_peak_rss();

    const auto start = std::chrono::steady_clock::now();
    const RunResult result = run_simulation(cfg);
    const double seconds = seconds_since(start);

    const std::size_t after_rss =
        peak_reset ? peak_rss_bytes() : current_rss_bytes();
    const std::size_t rss_delta =
        after_rss > baseline_rss ? after_rss - baseline_rss : 0;
    const double bytes_per_node =
        static_cast<double>(rss_delta) / static_cast<double>(p.n);
    const double events =
        static_cast<double>(result.events_processed);
    const double events_per_sec = seconds > 0.0 ? events / seconds : 0.0;

    std::printf("%-12s n=%-5u %10.0f events in %7.3f s -> %10.0f events/s, "
                "%8.0f bytes/node%s\n",
                p.protocol, p.n, events, seconds, events_per_sec,
                bytes_per_node, result.terminated ? "" : "  [DID NOT DECIDE]");

    json::Object row;
    row["protocol"] = p.protocol;
    row["n"] = static_cast<std::int64_t>(p.n);
    row["decisions"] = static_cast<std::int64_t>(p.decisions);
    row["terminated"] = result.terminated;
    row["events_processed"] = events;
    row["wall_seconds"] = seconds;
    row["events_per_sec"] = events_per_sec;
    row["baseline_rss_bytes"] = static_cast<std::int64_t>(baseline_rss);
    row["peak_rss_bytes"] = static_cast<std::int64_t>(after_rss);
    row["peak_reset_supported"] = peak_reset;
    row["rss_delta_bytes"] = static_cast<std::int64_t>(rss_delta);
    row["bytes_per_node"] = bytes_per_node;
    rows.push_back(json::Value{std::move(row)});
  }
  return json::Value{std::move(rows)};
}

/// Times the windowed-parallel driver against its own serial baseline
/// (engine.rng = "per_node", intra_jobs = 1) on large single runs — the
/// intra-run counterpart of the run_repeated comparison below. Both modes
/// execute the identical per-node-RNG semantics, so the results must be
/// bit-identical; speedup tracks the machine (~1x on one core). See
/// docs/PARALLELISM.md.
json::Value measure_intra_speedup(std::uint32_t intra_jobs) {
  struct Workload {
    const char* protocol;
    std::uint32_t n;
    std::uint32_t decisions;
  };
  const Workload workloads[] = {
      {"pbft", 4096, 1},
      {"hotstuff-ns", 4096, 10},
  };

  std::printf("\n--- windowed intra-run speedup (single run, intra_jobs=%u) ---\n",
              intra_jobs);
  json::Array rows;
  for (const Workload& w : workloads) {
    SimConfig cfg;
    cfg.protocol = w.protocol;
    cfg.n = w.n;
    cfg.lambda_ms = 1000;
    cfg.delay = DelaySpec::normal(250, 50);
    cfg.decisions = w.decisions;
    cfg.seed = 1;
    cfg.engine.rng = EngineConfig::RngMode::kPerNode;

    cfg.engine.intra_jobs = 1;
    const auto serial_start = std::chrono::steady_clock::now();
    const RunResult serial = run_simulation(cfg);
    const double serial_seconds = seconds_since(serial_start);

    cfg.engine.intra_jobs = intra_jobs;
    const auto parallel_start = std::chrono::steady_clock::now();
    const RunResult parallel = run_simulation(cfg);
    const double parallel_seconds = seconds_since(parallel_start);

    const bool identical =
        serial.events_processed == parallel.events_processed &&
        serial.messages_sent == parallel.messages_sent &&
        serial.messages_delivered == parallel.messages_delivered &&
        serial.termination_time == parallel.termination_time &&
        serial.decisions.size() == parallel.decisions.size();
    const double speedup =
        parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
    std::printf("%-12s n=%-5u serial %7.3f s, intra_jobs=%u %7.3f s -> "
                "%.2fx%s\n",
                w.protocol, w.n, serial_seconds, intra_jobs, parallel_seconds,
                speedup, identical ? "" : "  [RESULTS DIVERGE — bug]");

    json::Object row;
    row["protocol"] = w.protocol;
    row["n"] = static_cast<std::int64_t>(w.n);
    row["decisions"] = static_cast<std::int64_t>(w.decisions);
    row["events_processed"] =
        static_cast<double>(serial.events_processed);
    row["serial_seconds"] = serial_seconds;
    row["parallel_seconds"] = parallel_seconds;
    row["speedup"] = speedup;
    row["identical"] = identical;
    rows.push_back(json::Value{std::move(row)});
  }
  json::Object o;
  o["intra_jobs"] = static_cast<std::int64_t>(intra_jobs);
  o["workloads"] = json::Value{std::move(rows)};
  return json::Value{std::move(o)};
}

/// Times the attacker hook: the same workload attack-free (the passive
/// fast path, which never materializes Message objects) vs with a
/// registered no-op attack whose type filter matches nothing (every
/// unicast now traverses attack() through the envelope slow path). The
/// two runs must stay equivalent — the hook may cost wall time, never
/// semantics — and the overhead ratio is the figure bench_gate guards.
json::Value measure_attacker_hook(std::size_t repeats) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 32;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = 1;

  (void)run_repeated(cfg, 2);  // warm-up outside the timed region
  const auto passive_start = std::chrono::steady_clock::now();
  const Aggregate passive = run_repeated(cfg, repeats);
  const double passive_seconds = seconds_since(passive_start);

  cfg.attack = "delay-schedule";
  json::Object params;
  params["type"] = "bench/none";  // matches no payload type: a no-op hook
  cfg.attack_params = json::Value{std::move(params)};
  (void)run_repeated(cfg, 2);
  const auto hooked_start = std::chrono::steady_clock::now();
  const Aggregate hooked = run_repeated(cfg, repeats);
  const double hooked_seconds = seconds_since(hooked_start);

  const bool identical = equivalent(passive, hooked);
  const double overhead =
      passive_seconds > 0.0 ? hooked_seconds / passive_seconds : 0.0;
  std::printf("\n--- attacker hook overhead (pbft, n=32, %zu runs) ---\n",
              repeats);
  std::printf("passive:   %.3f s\n", passive_seconds);
  std::printf("hooked:    %.3f s  (no-op delay-schedule attack)\n",
              hooked_seconds);
  std::printf("overhead:  %.2fx\n", overhead);
  std::printf("aggregates identical (modulo wall clock): %s\n",
              identical ? "yes" : "NO — the hook changed semantics");

  json::Object o;
  o["workload"] = "run_repeated pbft n=32";
  o["repeats"] = static_cast<std::int64_t>(repeats);
  o["passive_seconds"] = passive_seconds;
  o["hooked_seconds"] = hooked_seconds;
  o["overhead_ratio"] = overhead;
  o["identical"] = identical;
  return json::Value{std::move(o)};
}

/// Times the WAN transport backend (net/wan/; see docs/NETWORKING.md)
/// against the classic direct-broadcast network on the same workload: one
/// direct baseline, then one run per backend piece (geo8 RTT matrix,
/// bandwidth queues, gossip dissemination). Each mode runs twice and the
/// two aggregates must be equivalent — WAN delays are deterministic
/// functions of the run seed, never of the wall clock. The gated figure is
/// relative_throughput (mode events/sec over direct events/sec): a pure
/// per-event-cost ratio, so it transfers across machines where raw
/// events/sec does not.
json::Value measure_wan_backend(std::size_t repeats) {
  SimConfig base;
  base.protocol = "pbft";
  base.n = 32;
  base.lambda_ms = 1000;
  base.delay = DelaySpec::normal(250, 50);
  base.seed = 1;

  (void)run_repeated(base, 2);  // warm-up outside the timed region
  const auto direct_start = std::chrono::steady_clock::now();
  const Aggregate direct = run_repeated(base, repeats);
  const double direct_seconds = seconds_since(direct_start);
  const double direct_events =
      direct.events.mean * static_cast<double>(direct.runs);
  const double direct_eps =
      direct_seconds > 0.0 ? direct_events / direct_seconds : 0.0;

  struct Mode {
    const char* name;
    const char* net_json;
  };
  const Mode modes[] = {
      {"matrix", R"({"rtt": {"matrix": "geo8"}})"},
      {"bandwidth", R"({"uplink_mbps": 200, "downlink_mbps": 200})"},
      {"gossip", R"({"backend": "gossip", "fanout": 3})"},
  };

  std::printf("\n--- WAN backend vs direct broadcast (pbft, n=32, %zu runs) ---\n",
              repeats);
  std::printf("direct:    %.3f s, %.0f events -> %.0f events/s\n",
              direct_seconds, direct_events, direct_eps);

  json::Array rows;
  for (const Mode& mode : modes) {
    SimConfig cfg = base;
    cfg.net = WanSpec::from_json(json::parse(mode.net_json));
    (void)run_repeated(cfg, 2);
    const auto start = std::chrono::steady_clock::now();
    const Aggregate agg = run_repeated(cfg, repeats);
    const double seconds = seconds_since(start);
    const Aggregate again = run_repeated(cfg, repeats);
    const bool deterministic = equivalent(agg, again);

    const double events = agg.events.mean * static_cast<double>(agg.runs);
    const double eps = seconds > 0.0 ? events / seconds : 0.0;
    const double relative = direct_eps > 0.0 ? eps / direct_eps : 0.0;
    std::printf("%-9s  %.3f s, %.0f events -> %.0f events/s (%.2fx direct)%s\n",
                mode.name, seconds, events, eps, relative,
                deterministic ? "" : "  [NONDETERMINISTIC — bug]");

    json::Object row;
    row["mode"] = mode.name;
    row["seconds"] = seconds;
    row["events_total"] = events;
    row["events_per_sec"] = eps;
    row["relative_throughput"] = relative;
    row["deterministic"] = deterministic;
    rows.push_back(json::Value{std::move(row)});
  }

  json::Object o;
  o["workload"] = "run_repeated pbft n=32";
  o["repeats"] = static_cast<std::int64_t>(repeats);
  o["direct_seconds"] = direct_seconds;
  o["direct_events_per_sec"] = direct_eps;
  o["modes"] = json::Value{std::move(rows)};
  return json::Value{std::move(o)};
}

/// Times the client workload generator (src/workload/; see
/// docs/WORKLOADS.md) against the same runs with no workload attached: one
/// request-free baseline, then one run per generator discipline
/// (open-loop Poisson arrivals, open-loop fixed arrivals with a batch
/// deadline, closed-loop client population). Each mode runs twice and the
/// two aggregates must be equivalent — arrivals come off the run-seed
/// "wl" RNG fork, never the wall clock. The gated figure is
/// relative_throughput (mode events/sec over baseline events/sec): a pure
/// per-event-cost ratio, so it transfers across machines where raw
/// events/sec does not. The base config targets ten decisions so batching
/// actually engages (a single-decision pbft run mints its only fresh
/// proposal at t=0, before any open-loop request has arrived).
json::Value measure_client_workload(std::size_t repeats) {
  SimConfig base;
  base.protocol = "pbft";
  base.n = 32;
  base.lambda_ms = 1000;
  base.delay = DelaySpec::normal(250, 50);
  base.decisions = 10;
  base.seed = 1;

  (void)run_repeated(base, 2);  // warm-up outside the timed region
  const auto baseline_start = std::chrono::steady_clock::now();
  const Aggregate baseline = run_repeated(base, repeats);
  const double baseline_seconds = seconds_since(baseline_start);
  const double baseline_events =
      baseline.events.mean * static_cast<double>(baseline.runs);
  const double baseline_eps =
      baseline_seconds > 0.0 ? baseline_events / baseline_seconds : 0.0;

  struct Mode {
    const char* name;
    WorkloadSpec spec;
  };
  Mode modes[3];
  modes[0].name = "open-poisson";
  modes[0].spec.rate_rps = 500.0;
  modes[0].spec.max_batch = 16;
  modes[1].name = "open-fixed";
  modes[1].spec.arrival = WorkloadSpec::Arrival::kFixed;
  modes[1].spec.rate_rps = 500.0;
  modes[1].spec.max_batch = 16;
  modes[1].spec.max_wait_ms = 50.0;
  modes[2].name = "closed";
  modes[2].spec.mode = WorkloadSpec::Mode::kClosed;
  modes[2].spec.clients = 200;
  modes[2].spec.window = 2;
  modes[2].spec.think_ms = 10.0;
  modes[2].spec.max_batch = 16;

  std::printf(
      "\n--- client workload vs request-free runs (pbft, n=32, %zu runs) ---\n",
      repeats);
  std::printf("no-workload: %.3f s, %.0f events -> %.0f events/s\n",
              baseline_seconds, baseline_events, baseline_eps);

  json::Array rows;
  for (const Mode& mode : modes) {
    SimConfig cfg = base;
    cfg.workload = mode.spec;
    (void)run_repeated(cfg, 2);
    const auto start = std::chrono::steady_clock::now();
    const Aggregate agg = run_repeated(cfg, repeats);
    const double seconds = seconds_since(start);
    const Aggregate again = run_repeated(cfg, repeats);
    const bool deterministic = equivalent(agg, again);

    const double events = agg.events.mean * static_cast<double>(agg.runs);
    const double eps = seconds > 0.0 ? events / seconds : 0.0;
    const double relative = baseline_eps > 0.0 ? eps / baseline_eps : 0.0;
    std::printf(
        "%-12s %.3f s, %.0f events -> %.0f events/s (%.2fx no-workload, "
        "%llu requests decided)%s\n",
        mode.name, seconds, events, eps, relative,
        static_cast<unsigned long long>(agg.workload_decided),
        deterministic ? "" : "  [NONDETERMINISTIC — bug]");

    json::Object row;
    row["mode"] = mode.name;
    row["seconds"] = seconds;
    row["events_total"] = events;
    row["events_per_sec"] = eps;
    row["relative_throughput"] = relative;
    row["deterministic"] = deterministic;
    row["requests_decided"] =
        static_cast<std::int64_t>(agg.workload_decided);
    rows.push_back(json::Value{std::move(row)});
  }

  json::Object o;
  o["workload"] = "run_repeated pbft n=32 decisions=10";
  o["repeats"] = static_cast<std::int64_t>(repeats);
  o["baseline_seconds"] = baseline_seconds;
  o["baseline_events_per_sec"] = baseline_eps;
  o["modes"] = json::Value{std::move(rows)};
  return json::Value{std::move(o)};
}

/// Times run_repeated vs run_repeated_parallel on the same workload,
/// checks the aggregates are equivalent, prints the comparison, and
/// writes it to `json_path`. Speedup tracks the machine: ~min(jobs,
/// cores)× on idle multi-core hosts, ~1× on a single core.
void measure_parallel_speedup(const std::string& json_path, std::size_t jobs,
                              std::size_t repeats, json::Value engine_throughput,
                              json::Value scaling, json::Value intra_speedup,
                              std::uint32_t intra_jobs,
                              json::Value attacker_hook,
                              json::Value wan_backend,
                              json::Value client_workload) {
  SimConfig cfg;
  cfg.protocol = "pbft";
  cfg.n = 32;
  cfg.lambda_ms = 1000;
  cfg.delay = DelaySpec::normal(250, 50);
  cfg.seed = 1;

  // Warm-up: touch the registry and fault in code/pages outside the
  // timed sections.
  (void)run_repeated(cfg, 2);

  const auto serial_start = std::chrono::steady_clock::now();
  const Aggregate serial = run_repeated(cfg, repeats);
  const double serial_seconds = seconds_since(serial_start);

  const auto parallel_start = std::chrono::steady_clock::now();
  const Aggregate parallel = run_repeated_parallel(cfg, repeats, jobs);
  const double parallel_seconds = seconds_since(parallel_start);

  const bool identical = equivalent(serial, parallel);
  const double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;

  std::printf("\n--- run_repeated serial vs parallel (pbft, n=32, %zu runs) ---\n",
              repeats);
  std::printf("serial:    %.3f s\n", serial_seconds);
  std::printf("parallel:  %.3f s  (%zu jobs, %u hardware threads)\n",
              parallel_seconds, jobs, std::thread::hardware_concurrency());
  std::printf("speedup:   %.2fx\n", speedup);
  std::printf("aggregates identical (modulo wall clock): %s\n",
              identical ? "yes" : "NO — determinism bug");

  json::Object o;
  o["bench"] = "micro_engine";
  o["workload"] = "run_repeated pbft n=32";
  o["repeats"] = static_cast<std::int64_t>(repeats);
  o["jobs"] = static_cast<std::int64_t>(jobs);
  o["hardware_threads"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  o["intra_jobs"] = static_cast<std::int64_t>(intra_jobs);
  o["serial_seconds"] = serial_seconds;
  o["parallel_seconds"] = parallel_seconds;
  o["speedup"] = speedup;
  o["aggregates_identical"] = identical;
  o["serial_aggregate"] = aggregate_to_json(serial);
  o["parallel_aggregate"] = aggregate_to_json(parallel);
  o["engine_throughput"] = std::move(engine_throughput);
  if (scaling.is_array()) o["scaling"] = std::move(scaling);
  if (intra_speedup.is_object()) o["intra_speedup"] = std::move(intra_speedup);
  if (attacker_hook.is_object()) o["attacker_hook"] = std::move(attacker_hook);
  if (wan_backend.is_object()) o["wan_backend"] = std::move(wan_backend);
  if (client_workload.is_object()) {
    o["client_workload"] = std::move(client_workload);
  }
  write_json_file(json_path, json::Value{std::move(o)});
  std::printf("[speedup record written to %s]\n", json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "micro_engine.json";
  std::size_t jobs = 4;
  std::uint32_t intra_jobs = 8;
  std::size_t repeats = 64;
  bool run_micro = true;
  bool run_scaling = true;
  bool run_intra = true;
  bool run_attacker = true;
  bool run_wan = true;
  bool run_workload = true;
  bool only_scaling = false;
  if (const char* env = std::getenv("BFTSIM_JOBS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) jobs = static_cast<std::size_t>(value);
  }

  // Strip our flags before handing argv to google-benchmark.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--intra-jobs") == 0 && i + 1 < argc) {
      intra_jobs =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--skip-intra") == 0) {
      run_intra = false;
    } else if (std::strcmp(argv[i], "--skip-attacker") == 0) {
      run_attacker = false;
    } else if (std::strcmp(argv[i], "--skip-wan") == 0) {
      run_wan = false;
    } else if (std::strcmp(argv[i], "--skip-workload") == 0) {
      run_workload = false;
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--skip-micro") == 0) {
      run_micro = false;
    } else if (std::strcmp(argv[i], "--skip-scaling") == 0) {
      run_scaling = false;
    } else if (std::strcmp(argv[i], "--only-scaling") == 0) {
      only_scaling = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (jobs == 0) jobs = bftsim::ThreadPool::default_workers();
  if (intra_jobs == 0) {
    intra_jobs =
        static_cast<std::uint32_t>(bftsim::ThreadPool::default_workers());
  }
  bench::require_writable(json_path);

  if (only_scaling) {
    json::Object o;
    o["bench"] = "micro_engine";
    o["hardware_threads"] =
        static_cast<std::int64_t>(std::thread::hardware_concurrency());
    o["scaling"] = measure_scaling_curve();
    write_json_file(json_path, json::Value{std::move(o)});
    std::printf("[scaling curve written to %s]\n", json_path.c_str());
    return 0;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (run_micro) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Named locals pin the measurement (and print) order — function-argument
  // evaluation order is unspecified.
  json::Value engine_throughput = measure_engine_throughput();
  json::Value scaling = run_scaling ? measure_scaling_curve() : json::Value{};
  json::Value intra =
      run_intra ? measure_intra_speedup(intra_jobs) : json::Value{};
  json::Value attacker_hook =
      run_attacker ? measure_attacker_hook(repeats) : json::Value{};
  json::Value wan_backend =
      run_wan ? measure_wan_backend(repeats) : json::Value{};
  json::Value client_workload =
      run_workload ? measure_client_workload(repeats) : json::Value{};
  measure_parallel_speedup(json_path, jobs, repeats,
                           std::move(engine_throughput), std::move(scaling),
                           std::move(intra), intra_jobs,
                           std::move(attacker_hook), std::move(wan_backend),
                           std::move(client_workload));
  return 0;
}

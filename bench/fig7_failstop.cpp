// Fig. 7: time usage across different numbers of fail-stop nodes
// (λ = 1000 ms, delays ~ N(1000, 300), n = 16). Expected: the
// partially-synchronous protocols are less resilient — they rely on
// quorums of honest messages to proceed — and HotStuff+NS degrades
// drastically (dead leaders burn whole exponentially backed-off views).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;
  const bench::BenchArgs args = bench::parse_args(argc, argv, 50);
  const std::size_t repeats = args.repeats;
  bench::Report report{"fig7_failstop", args};

  const std::vector<std::uint32_t> failstops{0, 1, 2, 3, 4, 5};

  std::vector<std::string> headers{"protocol"};
  for (const std::uint32_t f : failstops) headers.push_back("f=" + std::to_string(f));

  bench::print_title("Fig. 7 — latency per decision vs fail-stop nodes",
                     "n=16, lambda=1000ms, delay=N(1000,300), " +
                         std::to_string(repeats) +
                         " runs per cell (mean±std seconds; * = runs hit horizon)");
  Table table{headers, 16};
  table.print_header(std::cout);

  for (const std::string& protocol : bench::all_protocols()) {
    std::vector<std::string> cells{protocol};
    for (const std::uint32_t f : failstops) {
      SimConfig cfg =
          experiment_config(protocol, 16, 1000, DelaySpec::normal(1000, 300));
      cfg.honest = 16 - f;
      cfg.max_time_ms = 600'000;
      const std::string label = protocol + "/f=" + std::to_string(f);
      cells.push_back(bench::latency_cell(report.measure(label, cfg)));
    }
    table.print_row(std::cout, cells);
  }
  report.write();
  return 0;
}

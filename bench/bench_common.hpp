// Shared helpers for the figure-reproduction benches: command-line / env
// parsing (repeats, --jobs, --json), the protocol list, table cells, and a
// Report that runs configurations on the parallel runner and can export
// every measurement as a machine-readable JSON file (manifest + aggregate
// per sweep point — the BENCH_*.json format, see docs/RUNNING_EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"
#include "runner/export.hpp"
#include "runner/runner.hpp"

namespace bftsim::bench {

/// Options every bench binary accepts:
///   [repeats]      positional integer (default mirrors the paper's 100)
///   --jobs N       worker threads for the parallel runner; 0 = one per
///                  hardware core. Default: $BFTSIM_JOBS, else 1 (serial).
///   --json PATH    export every measurement to PATH as JSON.
struct BenchArgs {
  std::size_t repeats = 100;
  std::size_t jobs = 1;
  std::string json_path;
};

/// Fails fast (exit 2) when PATH cannot be created, so a long bench run
/// does not abort at the very end when writing its report.
inline void require_writable(const std::string& path) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write --json path %s\n", path.c_str());
    std::exit(2);
  }
  std::fclose(f);
}

inline BenchArgs parse_args(int argc, char** argv,
                            std::size_t default_repeats = 100) {
  BenchArgs args;
  args.repeats = default_repeats;
  if (const char* env = std::getenv("BFTSIM_JOBS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value >= 0) args.jobs = static_cast<std::size_t>(value);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      args.jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else {
      const long value = std::strtol(argv[i], nullptr, 10);
      if (value > 0) args.repeats = static_cast<std::size_t>(value);
    }
  }
  require_writable(args.json_path);
  return args;
}

/// Backwards-compatible repeats-only parsing (ignores the flags).
inline std::size_t repeats_from_args(int argc, char** argv,
                                     std::size_t fallback = 100) {
  return parse_args(argc, argv, fallback).repeats;
}

inline void print_title(const std::string& title, const std::string& setup) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!setup.empty()) std::printf("%s\n", setup.c_str());
}

/// All eight builtin protocols in Table I order.
inline const std::vector<std::string>& all_protocols() {
  static const std::vector<std::string> kProtocols{
      "addv1", "addv2", "addv3", "algorand",
      "asyncba", "pbft", "hotstuff-ns", "librabft"};
  return kProtocols;
}

/// Formats an aggregate latency as "mean±std s" (or TIMEOUT).
inline std::string latency_cell(const Aggregate& agg) {
  if (agg.latency_ms.count == 0) return "TIMEOUT";
  std::string cell = Table::cell(agg.per_decision_latency_ms.mean / 1e3,
                                 agg.per_decision_latency_ms.stddev / 1e3, "s");
  if (agg.timeouts > 0) cell += "*";
  return cell;
}

inline std::string message_cell(const Aggregate& agg) {
  return Table::cell(agg.per_decision_messages.mean,
                     agg.per_decision_messages.stddev, "");
}

/// Runs the bench's configurations on the parallel runner and collects
/// one {manifest, aggregate} entry per measurement; write() exports them
/// all as {"bench": ..., "jobs": ..., "results": [...]} when --json was
/// given (and is a no-op otherwise).
class Report {
 public:
  Report(std::string bench, BenchArgs args)
      : bench_(std::move(bench)), args_(std::move(args)) {}

  [[nodiscard]] const BenchArgs& args() const noexcept { return args_; }

  /// Runs `cfg` repeats times across args().jobs workers, timing the
  /// batch, and records the measurement under `label`.
  Aggregate measure(const std::string& label, const SimConfig& cfg) {
    return measure(label, cfg, args_.repeats);
  }

  Aggregate measure(const std::string& label, const SimConfig& cfg,
                    std::size_t repeats) {
    const auto start = std::chrono::steady_clock::now();
    Aggregate agg = run_repeated_parallel(cfg, repeats, args_.jobs);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    add(make_manifest(label, cfg, repeats, wall.count()), agg);
    return agg;
  }

  /// Records an externally produced measurement (e.g. the packet-level
  /// baseline engine, which the runner does not drive).
  void add(const RunManifest& manifest, const Aggregate& agg) {
    results_.push_back(experiment_to_json(manifest, agg));
  }

  /// Records a single run with its full per-run detail (view trajectories
  /// and all) — used by trace-style benches like fig9.
  void add_single(const std::string& label, const SimConfig& cfg,
                  const RunResult& result) {
    json::Object o;
    o["manifest"] = manifest_to_json(make_manifest(label, cfg, 1, result.wall_seconds));
    o["run"] = result_to_json(result, /*include_views=*/true);
    results_.push_back(json::Value{std::move(o)});
  }

  /// Records an arbitrary extra entry (speedup measurements etc.).
  void add_value(json::Value value) { results_.push_back(std::move(value)); }

  [[nodiscard]] RunManifest make_manifest(const std::string& label,
                                          const SimConfig& cfg,
                                          std::size_t repeats,
                                          double wall_seconds) const {
    RunManifest manifest;
    manifest.name = bench_ + "/" + label;
    manifest.config = cfg;
    manifest.repeats = repeats;
    manifest.jobs = args_.jobs == 0 ? ThreadPool::default_workers() : args_.jobs;
    manifest.wall_seconds = wall_seconds;
    return manifest;
  }

  /// Writes the collected entries when --json was given.
  void write() const {
    if (args_.json_path.empty()) return;
    json::Object o;
    o["bench"] = bench_;
    o["jobs"] = static_cast<std::int64_t>(args_.jobs);
    o["results"] = json::Value{results_};
    write_json_file(args_.json_path, json::Value{std::move(o)});
    std::printf("\n[%s: %zu results written to %s]\n", bench_.c_str(),
                results_.size(), args_.json_path.c_str());
  }

 private:
  std::string bench_;
  BenchArgs args_;
  json::Array results_;
};

}  // namespace bftsim::bench

// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "runner/runner.hpp"

namespace bftsim::bench {

/// Number of repetitions per configuration; the paper uses 100. Override
/// with argv[1] (smaller values make smoke runs fast).
inline std::size_t repeats_from_args(int argc, char** argv,
                                     std::size_t fallback = 100) {
  if (argc > 1) {
    const long value = std::strtol(argv[1], nullptr, 10);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  return fallback;
}

inline void print_title(const std::string& title, const std::string& setup) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!setup.empty()) std::printf("%s\n", setup.c_str());
}

/// All eight builtin protocols in Table I order.
inline const std::vector<std::string>& all_protocols() {
  static const std::vector<std::string> kProtocols{
      "addv1", "addv2", "addv3", "algorand",
      "asyncba", "pbft", "hotstuff-ns", "librabft"};
  return kProtocols;
}

/// Formats an aggregate latency as "mean±std s" (or TIMEOUT).
inline std::string latency_cell(const Aggregate& agg) {
  if (agg.latency_ms.count == 0) return "TIMEOUT";
  std::string cell = Table::cell(agg.per_decision_latency_ms.mean / 1e3,
                                 agg.per_decision_latency_ms.stddev / 1e3, "s");
  if (agg.timeouts > 0) cell += "*";
  return cell;
}

inline std::string message_cell(const Aggregate& agg) {
  return Table::cell(agg.per_decision_messages.mean,
                     agg.per_decision_messages.stddev, "");
}

}  // namespace bftsim::bench

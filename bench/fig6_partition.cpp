// Fig. 6: time usage under a network-partition attack. The network is
// split into two subnets (neither has a quorum) until the resolve time
// (dotted line in the paper). Expected: Algorand (partition-resilient by
// design) and the message-driven pacemakers (PBFT's view-change storms,
// LibraBFT's timeout certificates, async BA's retransmission) terminate
// within seconds of resolution; HotStuff+NS has to wait out the
// exponential back-off its naive synchronizer accumulated during the
// partition and finishes far later.
//
// Synchronous protocols other than Algorand are excluded, as in the paper
// (they are not partition-resilient).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;
  const bench::BenchArgs args = bench::parse_args(argc, argv, 30);
  const std::size_t repeats = args.repeats;
  bench::Report report{"fig6_partition", args};

  const double resolve_ms = 33'000;
  const std::vector<std::string> protocols{"algorand", "asyncba", "pbft",
                                           "hotstuff-ns", "librabft"};

  bench::print_title(
      "Fig. 6 — time usage under a network-partition attack",
      "n=16, lambda=1000ms, delay=N(250,50), two subnets, partition resolves at " +
          std::to_string(static_cast<int>(resolve_ms / 1000)) + "s, " +
          std::to_string(repeats) + " runs");

  Table table{{"protocol", "termination (s)", "after resolve (s)", "timeouts"}, 20};
  table.print_header(std::cout);

  for (const std::string& protocol : protocols) {
    SimConfig cfg = experiment_config(protocol, 16, 1000, DelaySpec::normal(250, 50));
    cfg.decisions = 1;  // time until the post-partition consensus completes
    cfg.attack = "partition";
    json::Object params;
    params["resolve_ms"] = resolve_ms;
    params["mode"] = "drop";
    params["subnets"] = 2;
    cfg.attack_params = json::Value{std::move(params)};
    cfg.max_time_ms = 600'000;

    const Aggregate agg = report.measure(protocol, cfg);
    const double term_s = agg.latency_ms.mean / 1e3;
    table.print_row(
        std::cout,
        {protocol,
         agg.latency_ms.count > 0
             ? Table::cell(term_s, agg.latency_ms.stddev / 1e3, "")
             : "TIMEOUT",
         agg.latency_ms.count > 0
             ? Table::cell(term_s - resolve_ms / 1e3, "")
             : "-",
         std::to_string(agg.timeouts)});
  }
  report.write();
  return 0;
}

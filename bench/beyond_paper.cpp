// Beyond the paper's eight: the two extension protocols (Tendermint,
// Sync HotStuff) dropped into the paper's Fig. 3 / Fig. 4 experiment
// designs, plus the equivocation attacks that exercise the attacker
// capabilities (payload forging via corrupted keys, injection) no builtin
// paper attack uses.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;
  const bench::BenchArgs args = bench::parse_args(argc, argv, 50);
  const std::size_t repeats = args.repeats;
  bench::Report report{"beyond_paper", args};

  const std::vector<std::string> protocols{"pbft", "hotstuff-ns", "tendermint",
                                           "sync-hotstuff"};
  const std::vector<DelaySpec> environments{DelaySpec::normal(250, 50),
                                            DelaySpec::normal(1000, 300)};

  bench::print_title("Extensions — Fig. 3-style comparison incl. new protocols",
                     "n=16, lambda=1000ms, " + std::to_string(repeats) +
                         " runs (s/decision | msgs/decision)");
  Table table{{"protocol", "N(250,50)", "msgs", "N(1000,300)", "msgs"}, 16};
  table.print_header(std::cout);
  for (const std::string& protocol : protocols) {
    std::vector<std::string> cells{protocol};
    for (const DelaySpec& env : environments) {
      SimConfig cfg = experiment_config(protocol, 16, 1000, env);
      const Aggregate agg =
          report.measure("fig3-style/" + protocol + "/" + env.describe(), cfg);
      cells.push_back(bench::latency_cell(agg));
      cells.push_back(Table::cell(agg.per_decision_messages.mean, ""));
    }
    table.print_row(std::cout, cells);
  }

  bench::print_title("Extensions — Fig. 4-style responsiveness incl. new protocols",
                     "delay=N(250,50); seconds to decide as λ grows");
  Table table_b{{"protocol", "λ=1000", "λ=2000", "λ=3000"}, 16};
  table_b.print_header(std::cout);
  for (const std::string& protocol : protocols) {
    std::vector<std::string> cells{protocol};
    for (const double lambda : {1000.0, 2000.0, 3000.0}) {
      SimConfig cfg =
          experiment_config(protocol, 16, lambda, DelaySpec::normal(250, 50));
      const std::string label = "fig4-style/" + protocol + "/lambda=" +
                                std::to_string(static_cast<int>(lambda));
      cells.push_back(bench::latency_cell(report.measure(label, cfg)));
    }
    table_b.print_row(std::cout, cells);
  }
  std::printf("\n(sync-hotstuff's 2Δ commit rule makes it the most λ-bound\n"
              " protocol in the suite; tendermint is responsive like PBFT)\n");

  bench::print_title("Extensions — equivocation attacks (forged conflicting proposals)",
                     "n=16, seconds to decide; safety holds in every run");
  Table table_c{{"target", "clean", "equivocation"}, 18};
  table_c.print_header(std::cout);
  for (const auto& [protocol, attack] :
       {std::pair{std::string("pbft"), std::string("pbft-equivocation")},
        std::pair{std::string("sync-hotstuff"),
                  std::string("sync-hotstuff-equivocation")}}) {
    SimConfig cfg = experiment_config(protocol, 16, 1000, DelaySpec::normal(250, 50));
    const Aggregate clean = report.measure("equivocation/" + protocol + "/clean", cfg);
    cfg.attack = attack;
    const Aggregate attacked = report.measure("equivocation/" + protocol + "/attacked", cfg);
    table_c.print_row(std::cout, {protocol, bench::latency_cell(clean),
                                  bench::latency_cell(attacked)});
  }
  report.write();
  return 0;
}

// Ablation: the computation-cost model (the paper's §III-A3 future-work
// feature, implemented here). Sweeping the per-message verification cost
// shows where each protocol's decision rate stops being network-bound and
// becomes CPU-bound — the throughput estimate the plain simulator cannot
// produce. Quadratic-message protocols saturate first.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;
  const bench::BenchArgs args = bench::parse_args(argc, argv, 30);
  const std::size_t repeats = args.repeats;
  bench::Report report{"ablation_costmodel", args};
  const std::vector<double> verify_costs{0.0, 0.5, 2.0, 5.0, 10.0};
  const std::vector<std::string> protocols{"pbft", "hotstuff-ns", "librabft",
                                           "tendermint"};

  std::vector<std::string> headers{"protocol"};
  for (const double c : verify_costs) {
    headers.push_back("verify=" + Table::cell(c, "ms"));
  }

  bench::print_title(
      "Ablation — throughput vs per-message verification cost",
      "n=16, lambda=1000ms, delay=N(250,50), sign cost = verify/2, decisions/s, " +
          std::to_string(repeats) + " runs");
  Table table{headers, 15};
  table.print_header(std::cout);

  for (const std::string& protocol : protocols) {
    std::vector<std::string> cells{protocol};
    for (const double verify : verify_costs) {
      SimConfig cfg =
          experiment_config(protocol, 16, 1000, DelaySpec::normal(250, 50));
      cfg.decisions = 10;  // sustained rate, not first-decision latency
      cfg.cost.verify_ms = verify;
      cfg.cost.sign_ms = verify / 2;
      const Aggregate agg = report.measure(
          protocol + "/verify=" + Table::cell(verify, "ms"), cfg);
      if (agg.per_decision_latency_ms.count == 0) {
        cells.emplace_back("TIMEOUT");
      } else {
        cells.push_back(
            Table::cell(1e3 / agg.per_decision_latency_ms.mean, "/s"));
      }
    }
    table.print_row(std::cout, cells);
  }
  report.write();
  return 0;
}

// Tables I and II: lines of code of each protocol and attack
// implementation — the paper uses these to argue that the simulator's
// abstractions keep protocol/attack code small. Counted over this
// repository's sources at build time.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#ifndef BFTSIM_SOURCE_DIR
#define BFTSIM_SOURCE_DIR "."
#endif

namespace {

std::size_t count_lines(const std::vector<std::string>& relative_paths) {
  std::size_t lines = 0;
  for (const std::string& rel : relative_paths) {
    const std::filesystem::path path =
        std::filesystem::path(BFTSIM_SOURCE_DIR) / rel;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) ++lines;
  }
  return lines;
}

}  // namespace

int main() {
  struct Row {
    const char* name;
    const char* model;
    std::vector<std::string> files;
  };

  const std::vector<Row> protocols{
      {"ADD+ v1/v2/v3 (shared impl)", "Synchronous",
       {"src/protocols/add/add.hpp", "src/protocols/add/add.cpp"}},
      {"Algorand Agreement", "Synchronous",
       {"src/protocols/algorand/algorand.hpp", "src/protocols/algorand/algorand.cpp"}},
      {"async BA (Bracha)", "Asynchronous",
       {"src/protocols/asyncba/asyncba.hpp", "src/protocols/asyncba/asyncba.cpp"}},
      {"PBFT", "Partially-Synchronous",
       {"src/protocols/pbft/pbft.hpp", "src/protocols/pbft/pbft.cpp"}},
      {"HotStuff+NS", "Partially-Synchronous",
       {"src/protocols/hotstuff/core.hpp", "src/protocols/hotstuff/core.cpp",
        "src/protocols/hotstuff/hotstuff_ns.hpp",
        "src/protocols/hotstuff/hotstuff_ns.cpp"}},
      {"LibraBFT (reuses chained core)", "Partially-Synchronous",
       {"src/protocols/librabft/librabft.hpp",
        "src/protocols/librabft/librabft.cpp"}},
  };

  const std::vector<Row> attacks{
      {"Network Partition Attack", "Partition", {"src/attacker/attacks.cpp"}},
      {"ADD+ Static Attack", "Static", {}},
      {"ADD+ Adaptive Attack", "Rushing + Adaptive", {}},
  };

  std::printf("\n=== Table I — implemented BFT protocols (LoC of this repo) ===\n");
  std::printf("%-34s %-24s %8s\n", "Protocol", "Network Model", "LoC");
  std::printf("%s\n", std::string(68, '-').c_str());
  for (const Row& row : protocols) {
    std::printf("%-34s %-24s %8zu\n", row.name, row.model, count_lines(row.files));
  }

  std::printf("\n=== Table II — implemented attacks ===\n");
  std::printf("%-34s %-24s %8s\n", "Attack", "Attacker Capability", "LoC");
  std::printf("%s\n", std::string(68, '-').c_str());
  std::printf("%-34s %-24s %8s\n", "all three attacks (one module)", "see header",
              std::to_string(count_lines({"src/attacker/attacks.hpp",
                                          "src/attacker/attacks.cpp"}))
                  .c_str());
  std::printf("  - Network Partition Attack       Partition\n");
  std::printf("  - ADD+ BA Static Attack          Static\n");
  std::printf("  - ADD+ BA Adaptive Attack        Rushing + Adaptive\n");
  return 0;
}

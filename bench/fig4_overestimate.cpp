// Fig. 4: responsiveness — latency as the timeout configuration λ is
// raised from 1000 ms to 3000 ms while the real delays stay N(250, 50).
// Expected: only the synchronous protocols (ADD+ variants, Algorand) get
// slower; the responsive partially-synchronous protocols and async BA are
// flat.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bftsim;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::Report report{"fig4_overestimate", args};

  const std::vector<double> lambdas{1000, 1500, 2000, 2500, 3000};

  std::vector<std::string> headers{"protocol"};
  for (const double lambda : lambdas) {
    headers.push_back("λ=" + std::to_string(static_cast<int>(lambda)));
  }

  bench::print_title("Fig. 4 — latency when the timeout is overestimated",
                     "n=16, delay=N(250,50), " + std::to_string(args.repeats) +
                         " runs per cell (mean±std seconds per decision)");
  Table table{headers, 15};
  table.print_header(std::cout);

  for (const std::string& protocol : bench::all_protocols()) {
    std::vector<std::string> cells{protocol};
    for (const double lambda : lambdas) {
      SimConfig cfg =
          experiment_config(protocol, 16, lambda, DelaySpec::normal(250, 50));
      const std::string label =
          protocol + "/lambda=" + std::to_string(static_cast<int>(lambda));
      cells.push_back(bench::latency_cell(report.measure(label, cfg)));
    }
    table.print_row(std::cout, cells);
  }
  std::printf("\n(responsive protocols — right of the paper's dotted line —\n"
              " are flat: asyncba, pbft, hotstuff-ns, librabft)\n");
  report.write();
  return 0;
}
